//! The Paxos replica: acceptor, learner, and (on demand) proposer.
//!
//! Every replica can propose — the point of the §3.1 consensus example.
//! Slot ownership decides who proposes *cheaply*: the owner of a slot
//! enjoys an implicit round-0 promise from all acceptors (Mencius-style
//! coordinated Paxos) and commits in one round trip; a non-owner must run
//! explicit Prepare/Promise with a higher ballot, and correctness is
//! preserved by the usual promise/accept rules.

use crate::proto::{Ballot, Command, PaxosMsg};
use cb_core::runtime::ServiceCtx;
use cb_simnet::time::SimDuration;
use cb_simnet::topology::NodeId;
use std::collections::{BTreeMap, HashMap};

/// How log slots are assigned to proposing replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotOwnership {
    /// One fixed leader owns every slot (classic multi-Paxos deployment).
    FixedLeader {
        /// Index of the leader among the replicas.
        leader: u64,
    },
    /// Slot `s` is owned by replica `s % replicas` (Mencius schedule).
    RoundRobin,
}

impl SlotOwnership {
    /// The owner of `slot` among `replicas` replicas.
    pub fn owner(self, slot: u64, replicas: u64) -> u64 {
        match self {
            SlotOwnership::FixedLeader { leader } => leader,
            SlotOwnership::RoundRobin => slot % replicas,
        }
    }
}

/// Per-slot acceptor state.
#[derive(Clone, Debug, Default)]
struct AcceptorSlot {
    /// Explicitly promised ballot, if any (the implicit owner promise is
    /// computed, not stored).
    promised: Option<Ballot>,
    /// Highest accepted (ballot, value).
    accepted: Option<(Ballot, Command)>,
}

/// Per-slot proposer state.
#[derive(Clone, Debug)]
struct Proposal {
    ballot: Ballot,
    value: Command,
    /// Phase 1 promises gathered (by acceptor), with any accepted values.
    promises: HashMap<NodeId, Option<(Ballot, Command)>>,
    /// Phase 2 accepts gathered.
    accepts: Vec<NodeId>,
    /// Whether phase 2 has been launched.
    accepting: bool,
    /// Whether the slot has been committed (Learn sent).
    committed: bool,
}

/// Checkpoint: how much of the log this replica has learned.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ReplicaCheckpoint {
    /// Number of learned slots.
    pub learned: u64,
    /// Highest learned slot + 1.
    pub log_high: u64,
}

/// A Paxos replica.
pub struct Replica {
    me: NodeId,
    /// This replica's index among the replica group.
    pub index: u64,
    /// The replica group, in index order.
    pub group: Vec<NodeId>,
    ownership: SlotOwnership,
    /// Acceptor state by slot.
    acceptors: BTreeMap<u64, AcceptorSlot>,
    /// Proposer state by slot.
    proposals: BTreeMap<u64, Proposal>,
    /// Next owned slot to use for a fresh command.
    next_owned_slot: Option<u64>,
    /// Lowest ballot round this replica's explicit (phase-1) proposals may
    /// use. Restarted incarnations raise it above anything the previous
    /// incarnation could have proposed — an amnesiac reusing a forgotten
    /// ballot for a different value would let two values decide in one
    /// slot.
    ballot_round_floor: u64,
    /// Learned log: slot -> command.
    pub learned: BTreeMap<u64, Command>,
    /// Commands committed by this replica acting as proposer.
    pub committed_here: u64,
    /// Phase-1 conflicts observed (Nacks received).
    pub nacks_seen: u64,
}

impl Replica {
    /// Creates replica `index` of `group` with the given slot ownership.
    pub fn new(me: NodeId, index: u64, group: Vec<NodeId>, ownership: SlotOwnership) -> Self {
        let mut r = Replica {
            me,
            index,
            group,
            ownership,
            acceptors: BTreeMap::new(),
            proposals: BTreeMap::new(),
            next_owned_slot: None,
            ballot_round_floor: 0,
            learned: BTreeMap::new(),
            committed_here: 0,
            nacks_seen: 0,
        };
        r.next_owned_slot = r.first_owned_slot_from(0);
        r
    }

    /// The replica the schedule designates for fresh commands when this one
    /// owns no slots.
    fn schedule_leader(&self) -> NodeId {
        let owner = self.ownership.owner(0, self.replicas()) as usize;
        self.group[owner]
    }

    fn replicas(&self) -> u64 {
        self.group.len() as u64
    }

    fn quorum(&self) -> usize {
        self.group.len() / 2 + 1
    }

    /// The first slot at or after `from` this replica owns, or `None` when
    /// the schedule never assigns it one (a non-leader under a fixed-leader
    /// schedule).
    fn first_owned_slot_from(&self, from: u64) -> Option<u64> {
        // Ownership is periodic in the group size; one period suffices.
        (from..from + self.replicas())
            .find(|&s| self.ownership.owner(s, self.replicas()) == self.index)
    }

    /// The ballot an acceptor implicitly promises for a slot: the owner's
    /// base ballot.
    fn implicit_promise(&self, slot: u64) -> Ballot {
        Ballot::base(self.ownership.owner(slot, self.replicas()))
    }

    fn effective_promise(&self, slot: u64) -> Ballot {
        let implicit = self.implicit_promise(slot);
        match self.acceptors.get(&slot).and_then(|a| a.promised) {
            Some(p) => p.max(implicit),
            None => implicit,
        }
    }

    /// Starts consensus for `value` in the next slot this replica owns
    /// (skipping the explicit phase 1 thanks to the implicit promise).
    pub fn propose_owned(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        value: Command,
    ) {
        let Some(slot) = self.next_owned_slot else {
            // This replica owns no slots (fixed-leader schedule): relay the
            // submission to the designated leader.
            let leader = self.schedule_leader();
            ctx.send(leader, PaxosMsg::Submit { cmd: value });
            return;
        };
        self.next_owned_slot = self.first_owned_slot_from(slot + 1);
        self.propose_base_in_slot(ctx, slot, value);
    }

    /// Phase-2-only proposal at this replica's base ballot in a specific
    /// slot. Safe only for owned slots this incarnation has never proposed
    /// in before — [`Replica::propose_owned`] and the Mencius skip-fill
    /// path both draw slots from the monotone owned cursor, which
    /// guarantees exactly that.
    pub(crate) fn propose_base_in_slot(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        slot: u64,
        value: Command,
    ) {
        let ballot = Ballot::base(self.index);
        self.proposals.insert(
            slot,
            Proposal {
                ballot,
                value,
                promises: HashMap::new(),
                accepts: Vec::new(),
                accepting: true,
                committed: false,
            },
        );
        for &a in &self.group.clone() {
            ctx.send_sized(
                a,
                PaxosMsg::Accept {
                    slot,
                    ballot,
                    value,
                },
                crate::scenario::CMD_BYTES,
            );
        }
    }

    /// Raises the minimum ballot round for this replica's explicit
    /// proposals (see the `ballot_round_floor` field).
    pub(crate) fn set_ballot_round_floor(&mut self, floor: u64) {
        self.ballot_round_floor = self.ballot_round_floor.max(floor);
    }

    /// Clamps a ballot to the configured round floor.
    fn floored(&self, b: Ballot) -> Ballot {
        if b.round() < self.ballot_round_floor {
            Ballot::new(self.ballot_round_floor, self.index)
        } else {
            b
        }
    }

    /// Starts consensus for `value` in an arbitrary slot with an explicit
    /// phase 1 (used when contending for a slot this replica does not own).
    pub fn propose_in_slot(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        slot: u64,
        value: Command,
    ) {
        if self.proposals.get(&slot).is_some_and(|p| p.committed) {
            return;
        }
        // Start above everything this replica has already seen promised
        // for the slot, not just the implicit owner promise: a re-proposal
        // that opens below the going rate is pure nack traffic (under a
        // revocation storm, enough of it to congest the network and starve
        // the very slot it is trying to close). And never regress below —
        // or reuse — our own earlier attempt's ballot: a reused ballot
        // with a different value could decide twice.
        let mut ballot = self.floored(self.effective_promise(slot).bump_for(self.index));
        if let Some(p) = self.proposals.get(&slot) {
            if p.ballot.proposer() == self.index && p.ballot >= ballot {
                ballot = p.ballot.bump_for(self.index);
            }
        }
        self.proposals.insert(
            slot,
            Proposal {
                ballot,
                value,
                promises: HashMap::new(),
                accepts: Vec::new(),
                accepting: false,
                committed: false,
            },
        );
        for &a in &self.group.clone() {
            ctx.send(a, PaxosMsg::Prepare { slot, ballot });
        }
    }

    fn on_prepare(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        from: NodeId,
        slot: u64,
        ballot: Ballot,
    ) {
        let current = self.effective_promise(slot);
        if ballot >= current {
            let entry = self.acceptors.entry(slot).or_default();
            entry.promised = Some(ballot);
            let accepted = entry.accepted;
            ctx.send(
                from,
                PaxosMsg::Promise {
                    slot,
                    ballot,
                    accepted,
                },
            );
        } else {
            ctx.send(
                from,
                PaxosMsg::Nack {
                    slot,
                    promised: current,
                },
            );
        }
    }

    fn on_promise(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        from: NodeId,
        slot: u64,
        ballot: Ballot,
        accepted: Option<(Ballot, Command)>,
    ) {
        let quorum = self.quorum();
        let group = self.group.clone();
        let Some(p) = self.proposals.get_mut(&slot) else {
            return;
        };
        if p.ballot != ballot || p.accepting || p.committed {
            return;
        }
        p.promises.insert(from, accepted);
        if p.promises.len() >= quorum {
            // Adopt the highest previously accepted value, if any.
            if let Some((_, v)) = p
                .promises
                .values()
                .filter_map(|a| *a)
                .max_by_key(|(b, _)| *b)
            {
                p.value = v;
            }
            p.accepting = true;
            let (b, v) = (p.ballot, p.value);
            for &a in &group {
                ctx.send_sized(
                    a,
                    PaxosMsg::Accept {
                        slot,
                        ballot: b,
                        value: v,
                    },
                    crate::scenario::CMD_BYTES,
                );
            }
        }
    }

    fn on_accept(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        from: NodeId,
        slot: u64,
        ballot: Ballot,
        value: Command,
    ) {
        let current = self.effective_promise(slot);
        if ballot >= current {
            let entry = self.acceptors.entry(slot).or_default();
            entry.promised = Some(ballot);
            entry.accepted = Some((ballot, value));
            ctx.send(from, PaxosMsg::Accepted { slot, ballot });
        } else {
            ctx.send(
                from,
                PaxosMsg::Nack {
                    slot,
                    promised: current,
                },
            );
        }
    }

    fn on_accepted(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        from: NodeId,
        slot: u64,
        ballot: Ballot,
    ) {
        let quorum = self.quorum();
        let group = self.group.clone();
        let Some(p) = self.proposals.get_mut(&slot) else {
            return;
        };
        if p.ballot != ballot || p.committed {
            return;
        }
        if !p.accepts.contains(&from) {
            p.accepts.push(from);
        }
        if p.accepts.len() >= quorum {
            p.committed = true;
            let v = p.value;
            self.committed_here += 1;
            for &l in &group {
                ctx.send_sized(
                    l,
                    PaxosMsg::Learn { slot, value: v },
                    crate::scenario::CMD_BYTES,
                );
            }
            ctx.send(v.client(), PaxosMsg::Committed { cmd: v });
        }
    }

    fn on_nack(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        slot: u64,
        promised: Ballot,
    ) {
        self.nacks_seen += 1;
        let group = self.group.clone();
        // Only a nack that post-dates our current attempt is news. Stale
        // nacks (crossed in flight with a bump they themselves caused)
        // MUST be dropped: retrying on each would answer every nack of a
        // broadcast with another full Prepare broadcast — a self-feeding
        // message storm that congests the network and starves the slot.
        match self.proposals.get(&slot) {
            None => return,
            Some(p) if p.committed || promised <= p.ballot => return,
            Some(_) => {}
        }
        // Retry phase 1 with a ballot above the one we lost to.
        let ballot = self.floored(promised.bump_for(self.index));
        let p = self.proposals.get_mut(&slot).expect("checked above");
        p.ballot = ballot;
        p.promises.clear();
        p.accepts.clear();
        p.accepting = false;
        for &a in &group {
            ctx.send(a, PaxosMsg::Prepare { slot, ballot });
        }
    }
}

impl Replica {
    /// Dispatches one protocol message (called by the unified
    /// [`crate::node::PaxosNode`] service).
    pub fn handle(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        from: NodeId,
        msg: PaxosMsg,
    ) {
        match msg {
            PaxosMsg::Submit { cmd } => self.propose_owned(ctx, cmd),
            PaxosMsg::SubmitAt { slot, cmd } => self.propose_in_slot(ctx, slot, cmd),
            PaxosMsg::Prepare { slot, ballot } => self.on_prepare(ctx, from, slot, ballot),
            PaxosMsg::Promise {
                slot,
                ballot,
                accepted,
            } => self.on_promise(ctx, from, slot, ballot, accepted),
            PaxosMsg::Accept {
                slot,
                ballot,
                value,
            } => self.on_accept(ctx, from, slot, ballot, value),
            PaxosMsg::Accepted { slot, ballot } => self.on_accepted(ctx, from, slot, ballot),
            PaxosMsg::Nack { slot, promised } => self.on_nack(ctx, slot, promised),
            PaxosMsg::Learn { slot, value } => {
                self.learned.insert(slot, value);
            }
            PaxosMsg::LearnReq { from_slot } => self.on_learn_req(ctx, from, from_slot),
            PaxosMsg::Committed { .. } | PaxosMsg::Result { .. } => {}
        }
    }

    /// Learner catch-up: re-send a bounded batch of learned slots starting
    /// at `from_slot` to the requester. Decided values only, so this can
    /// never conflict with anything.
    fn on_learn_req(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, PaxosMsg, ReplicaCheckpoint>,
        from: NodeId,
        from_slot: u64,
    ) {
        const CATCHUP_BATCH: usize = 64;
        for (&slot, &value) in self.learned.range(from_slot..).take(CATCHUP_BATCH) {
            ctx.send_sized(
                from,
                PaxosMsg::Learn { slot, value },
                crate::scenario::CMD_BYTES,
            );
        }
    }

    /// Advances the owned-slot cursor to the first owned slot at or after
    /// `floor` (never backwards), returning the owned slots that were
    /// jumped over. The Mencius layer calls this before every fresh
    /// proposal — so an owner that learned about later slots does not
    /// propose into the past — and no-op-fills the returned slots so
    /// execution never stalls on holes this skip created.
    pub(crate) fn fast_forward_owned(&mut self, floor: u64) -> Vec<u64> {
        let mut skipped = Vec::new();
        let Some(mut cur) = self.next_owned_slot else {
            return skipped;
        };
        while cur < floor {
            skipped.push(cur);
            match self.first_owned_slot_from(cur + 1) {
                Some(next) => cur = next,
                None => {
                    self.next_owned_slot = None;
                    return skipped;
                }
            }
        }
        self.next_owned_slot = Some(cur);
        skipped
    }

    /// The first slot at or after `from` this replica owns (see
    /// [`SlotOwnership`]).
    pub(crate) fn first_owned_at_or_after(&self, from: u64) -> Option<u64> {
        self.first_owned_slot_from(from)
    }

    /// The other members of the replica group (checkpoint recipients).
    pub fn group_peers(&self) -> Vec<NodeId> {
        self.group
            .iter()
            .copied()
            .filter(|&n| n != self.me)
            .collect()
    }
}

/// Convenience for tests and scenarios.
pub fn retry_interval() -> SimDuration {
    SimDuration::from_secs(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_schedules() {
        let rr = SlotOwnership::RoundRobin;
        assert_eq!(rr.owner(0, 5), 0);
        assert_eq!(rr.owner(7, 5), 2);
        let fl = SlotOwnership::FixedLeader { leader: 3 };
        assert_eq!(fl.owner(0, 5), 3);
        assert_eq!(fl.owner(99, 5), 3);
    }

    #[test]
    fn first_owned_slot_respects_schedule() {
        let group: Vec<NodeId> = (0..5).map(NodeId).collect();
        let r = Replica::new(NodeId(2), 2, group.clone(), SlotOwnership::RoundRobin);
        assert_eq!(r.next_owned_slot, Some(2));
        assert_eq!(r.first_owned_slot_from(3), Some(7));
        let follower = Replica::new(
            NodeId(1),
            1,
            group,
            SlotOwnership::FixedLeader { leader: 0 },
        );
        assert_eq!(follower.next_owned_slot, None);
    }

    #[test]
    fn implicit_promise_belongs_to_owner() {
        let group: Vec<NodeId> = (0..5).map(NodeId).collect();
        let r = Replica::new(NodeId(0), 0, group, SlotOwnership::RoundRobin);
        assert_eq!(r.implicit_promise(3), Ballot::base(3));
        assert_eq!(r.effective_promise(3), Ballot::base(3));
    }
}
