//! Acceptance check: the per-decision `EvalCache` is transparent at
//! campaign scale.
//!
//! Runs the randtree campaign scenario in its lookahead arm — the arm
//! where every `choose()` goes through the predictive evaluator and the
//! cache actually engages — across many seeds with the cache enabled and
//! disabled, renders each run as the exact artifact JSON the campaign
//! runner would write, and asserts the two are **byte-identical** after
//!
//! * wall masking (`Registry::masked()` — same normalization the
//!   determinism oracle applies), and
//! * neutralizing the cache's *own* accounting keys
//!   (`core.evalcache.hits` / `core.evalcache.misses` and the derived
//!   `cache_hit_rate` summary), which by construction read 0/0/null when
//!   the cache is off — they report on the cache, not on behavior.
//!
//! Everything else — trace fingerprint, event counts, oracle verdicts,
//! network metrics, decision-latency histograms on the sim-cost clock,
//! `mck.*` exploration counters, the trace window — must match to the
//! byte. In release builds (CI's `cargo test --workspace --release`) this
//! sweeps 32 seeds; debug builds keep a 4-seed smoke so plain
//! `cargo test -q` stays quick.

use cb_harness::prelude::*;
use cb_harness::scenario::RunReport;
use cb_randtree::RandTreeCampaign;

/// Keys whose values legitimately differ with the cache on vs off: the
/// cache's own accounting — the `core.evalcache.*` telemetry counters, the
/// derived `cache_hit_rate` summary, and the per-decision `evalcache.hits` /
/// `evalcache.misses` attrs each decision span carries in the `provenance`
/// section. They report on the cache, not on behavior; everything else must
/// be byte-identical.
const CACHE_ACCOUNTING_KEYS: [&str; 5] = [
    "\"core.evalcache.hits\"",
    "\"core.evalcache.misses\"",
    "\"cache_hit_rate\"",
    "\"evalcache.hits\"",
    "\"evalcache.misses\"",
];

/// Renders a report the way a campaign artifact embeds it, with wall
/// metrics masked (telemetry `*wall*` keys and every provenance span's
/// `wall_ns`) and the cache-accounting values neutralized.
fn normalized_artifact(mut report: RunReport) -> String {
    report.telemetry = report.telemetry.masked();
    let json = report
        .to_json()
        .with("provenance", report.provenance_masked_json())
        .to_string_pretty();
    json.lines()
        .map(|line| {
            let key_hit = CACHE_ACCOUNTING_KEYS
                .iter()
                .any(|k| line.trim_start().starts_with(k));
            if !key_hit {
                return line.to_string();
            }
            let (key_part, rest) = line.split_once(':').expect("key line has a value");
            let comma = if rest.trim_end().ends_with(',') {
                ","
            } else {
                ""
            };
            format!("{key_part}: \"<cache-accounting>\"{comma}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn evalcache_on_off_campaign_artifacts_are_byte_identical() {
    let seeds: u64 = if cfg!(debug_assertions) { 4 } else { 32 };
    let on = RandTreeCampaign {
        lookahead: true,
        evalcache: true,
        ..Default::default()
    };
    let off = RandTreeCampaign {
        lookahead: true,
        evalcache: false,
        ..Default::default()
    };
    let mut total_hits = 0u64;
    for seed in 1..=seeds {
        let plan = on.default_plan(seed);
        let run_on = on.run(seed, &plan);
        let run_off = off.run(seed, &plan);
        total_hits += run_on.telemetry.counter("core.evalcache.hits");
        assert_eq!(
            run_off.telemetry.counter("core.evalcache.hits")
                + run_off.telemetry.counter("core.evalcache.misses"),
            0,
            "seed {seed}: cache accounting must be silent with the cache off"
        );
        assert_eq!(
            run_on.fingerprint, run_off.fingerprint,
            "seed {seed}: trace fingerprint shifted with the cache on"
        );
        let a = normalized_artifact(run_on);
        let b = normalized_artifact(run_off);
        assert_eq!(
            a, b,
            "seed {seed}: masked artifacts differ beyond cache accounting"
        );
    }
    // Non-vacuity: the sweep must have exercised actual cache hits, or the
    // transparency claim was never tested.
    assert!(
        total_hits > 0,
        "no cache hits across {seeds} seeds — the transparency check is vacuous"
    );
}
