//! Campaign registration: the random-tree scenario under fault schedules.
//!
//! Exposes the §4 case-study protocol to the `cb-harness` campaign runner.
//! The default arm is Choice-Random (the cheap one); setting
//! [`RandTreeCampaign::lookahead`] switches to predictive lookahead so the
//! campaign exercises the fused-evaluation + [`EvalCache`] hot path — the
//! cache-transparency check and the `campaign --lookahead` flag use it.
//!
//! The oracles check the paper's core correctness claims
//! about the overlay after faults heal:
//!
//! * `tree.well_formed` — parent/child links are mutually consistent and
//!   acyclic;
//! * `tree.reachable` — every node that is up at the end of the run is
//!   reachable from the root by child links (no orphaned islands after
//!   the fault schedule heals).
//!
//! [`EvalCache`]: cb_core::evalcache::EvalCache

use crate::choice::ChoiceRandTree;
use crate::metrics::tree_stats;
use cb_core::choice::Resolver;
use cb_core::predict::PredictConfig;
use cb_core::resolve::lookahead::LookaheadResolver;
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{fleet_telemetry, RuntimeConfig, RuntimeNode};
use cb_harness::prelude::*;
use cb_harness::scenario::RunReport;
use cb_simnet::prelude::*;

/// The campaign-facing random-tree scenario.
pub struct RandTreeCampaign {
    /// Number of participants.
    pub nodes: usize,
    /// Run horizon.
    pub horizon: SimTime,
    /// Resolve the forwarding choice by predictive lookahead instead of
    /// uniformly at random. This routes every campaign decision through
    /// the [`cb_core::predict::ModelEvaluator`] hot path (the `campaign`
    /// binary flips it with `--lookahead`), which is what makes the
    /// [`evalcache`](Self::evalcache) knob observable.
    pub lookahead: bool,
    /// Enable the per-decision [`cb_core::evalcache::EvalCache`] in the
    /// lookahead arm. The cache is transparent — runs with it on and off
    /// must produce byte-identical artifacts (after wall masking and
    /// modulo the cache's own hit/miss accounting); the
    /// `cache_transparency` integration test pins exactly that.
    pub evalcache: bool,
}

impl Default for RandTreeCampaign {
    fn default() -> Self {
        RandTreeCampaign {
            nodes: 15,
            horizon: SimTime::from_secs(900),
            lookahead: false,
            evalcache: true,
        }
    }
}

impl Scenario for RandTreeCampaign {
    fn name(&self) -> &'static str {
        "randtree"
    }

    fn node_count(&self) -> usize {
        self.nodes
    }

    fn default_plan(&self, seed: u64) -> FaultPlan {
        // Crash/restart a rotating non-root victim mid-join, add a healed
        // partition that temporarily splits off two other non-root nodes,
        // and a short loss window. Everything heals well before the
        // horizon, so the oracles must hold.
        let n = self.nodes as u64;
        let victim = 1 + (seed % (n - 1)) as u32;
        let pa = 1 + ((seed + 1) % (n - 1)) as u32;
        let pb = 1 + ((seed + 2) % (n - 1)) as u32;
        let mut plan = FaultPlan::none()
            .crash(victim, 3_000)
            .restart(victim, 8_000)
            .loss(0.05, 1_000, 5_000);
        if pa != victim && pb != victim && pa != pb {
            let others: Vec<u32> = (0..self.nodes as u32)
                .filter(|&i| i != pa && i != pb)
                .collect();
            plan = plan.partition(&[pa, pb], &others, 4_000, Some(10_000));
        }
        plan
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let topo = Topology::transit_stub(
            &TransitStubConfig::default().with_at_least_hosts(self.nodes),
            &mut SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9)),
        );
        let nodes = self.nodes;
        let lookahead = self.lookahead;
        let evalcache = self.evalcache;
        let mut sim: Sim<RuntimeNode<ChoiceRandTree>> = Sim::new(topo, seed, move |id| {
            let delay = SimDuration::from_millis(400) * (id.0 as u64 + 1);
            let resolver: Box<dyn Resolver> = if lookahead {
                Box::new(LookaheadResolver::new())
            } else {
                Box::new(RandomResolver::new(seed ^ ((id.0 as u64) << 8)))
            };
            // Mirrors `ChoiceRandTree::new`'s default prediction budget,
            // with only the cache knob threaded through (the random arm
            // never evaluates, so the config is inert there).
            let service =
                ChoiceRandTree::new(id, NodeId(0), delay).with_predict_config(PredictConfig {
                    depth: 8,
                    walks: 16,
                    cache: evalcache,
                    ..Default::default()
                });
            RuntimeNode::new(
                service,
                RuntimeConfig::new(resolver).controller_every(SimDuration::from_millis(500)),
            )
        });
        let participants: Vec<NodeId> = sim.topology().hosts().take(nodes).collect();
        for &n in &participants {
            sim.schedule_start(n, SimTime::ZERO);
        }
        plan.drive(&mut sim, seed ^ 0xc0ff_ee00, self.horizon);

        let stats = tree_stats(&sim, NodeId(0));
        let up = participants.iter().filter(|&&n| sim.is_up(n)).count();
        let verdicts = vec![
            OracleVerdict::check("tree.well_formed", stats.well_formed, format!("{stats:?}")),
            OracleVerdict::check(
                "tree.reachable",
                stats.reachable == up,
                format!("{} of {up} up nodes reachable from root", stats.reachable),
            ),
        ];
        // The runtime's controller timer re-arms forever, so RuntimeNode
        // scenarios never quiesce; skip the generic quiescence oracle.
        RunReport::from_sim_quiescence(self.name(), seed, plan, &sim, self.horizon, verdicts, false)
            .with_telemetry(fleet_telemetry(&sim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_passes() {
        let s = RandTreeCampaign::default();
        let r = s.run(3, &FaultPlan::none());
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn default_plan_recovers() {
        let s = RandTreeCampaign::default();
        let plan = s.default_plan(5);
        let r = s.run(5, &plan);
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn lookahead_arm_recovers_deterministically_and_uses_the_cache() {
        let s = RandTreeCampaign {
            lookahead: true,
            ..Default::default()
        };
        let plan = s.default_plan(7);
        let a = s.run(7, &plan);
        let b = s.run(7, &plan);
        assert!(!a.violated(), "{:?}", a.verdicts);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "lookahead arm nondeterministic"
        );
        // The lookahead arm routes decisions through the evaluator, so the
        // EvalCache accounting must be live (misses at minimum).
        let touched = a.telemetry.counter("core.evalcache.hits")
            + a.telemetry.counter("core.evalcache.misses");
        assert!(touched > 0, "EvalCache never engaged in the lookahead arm");
    }

    #[test]
    fn unhealed_partition_orphans_nodes() {
        let s = RandTreeCampaign::default();
        let others: Vec<u32> = (0..15u32).filter(|&i| i != 7 && i != 8).collect();
        let plan = FaultPlan::none().partition(&[7, 8], &others, 2_000, None);
        let r = s.run(11, &plan);
        assert!(r.violated(), "{:?}", r.verdicts);
        assert!(r.failing_oracles().contains(&"tree.reachable"));
    }
}
