//! Campaign registration: the random-tree scenario under fault schedules.
//!
//! Exposes the §4 case-study protocol to the `cb-harness` campaign runner.
//! The default arm is Choice-Random (the cheap one); setting
//! [`RandTreeCampaign::lookahead`] switches to predictive lookahead so the
//! campaign exercises the fused-evaluation + [`EvalCache`] hot path — the
//! cache-transparency check and the `campaign --lookahead` flag use it.
//!
//! The oracles check the paper's core correctness claims
//! about the overlay after faults heal:
//!
//! * `tree.well_formed` — parent/child links are mutually consistent and
//!   acyclic;
//! * `tree.reachable` — every node that is up at the end of the run is
//!   reachable from the root by child links (no orphaned islands after
//!   the fault schedule heals).
//!
//! [`EvalCache`]: cb_core::evalcache::EvalCache

use crate::choice::ChoiceRandTree;
use crate::metrics::tree_stats;
use cb_core::choice::Resolver;
use cb_core::predict::PredictConfig;
use cb_core::resolve::ladder::LadderResolver;
use cb_core::resolve::lookahead::LookaheadResolver;
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{fleet_telemetry, RuntimeConfig, RuntimeNode};
use cb_harness::prelude::*;
use cb_harness::scenario::RunReport;
use cb_simnet::prelude::*;

/// The campaign-facing random-tree scenario.
pub struct RandTreeCampaign {
    /// Number of participants.
    pub nodes: usize,
    /// Run horizon.
    pub horizon: SimTime,
    /// Resolve the forwarding choice by predictive lookahead instead of
    /// uniformly at random. This routes every campaign decision through
    /// the [`cb_core::predict::ModelEvaluator`] hot path (the `campaign`
    /// binary flips it with `--lookahead`), which is what makes the
    /// [`evalcache`](Self::evalcache) knob observable.
    pub lookahead: bool,
    /// Enable the per-decision [`cb_core::evalcache::EvalCache`] in the
    /// lookahead arm. The cache is transparent — runs with it on and off
    /// must produce byte-identical artifacts (after wall masking and
    /// modulo the cache's own hit/miss accounting); the
    /// `cache_transparency` integration test pins exactly that.
    pub evalcache: bool,
    /// Resolve choices through the degradation-governed
    /// [`LadderResolver`] instead of a fixed strategy. Takes precedence
    /// over [`lookahead`](Self::lookahead). Combined with
    /// [`deadline_states`](Self::deadline_states) this is the *enforced*
    /// arm of the degradation experiments: the evaluator stops exploring
    /// at the deadline, reports [`Partial`], and the ladder steps down.
    ///
    /// [`Partial`]: cb_core::choice::EvalVerdict::Partial
    pub ladder: bool,
    /// Per-decision prediction deadline, in explored states (0 = off).
    /// In the ladder arm it is *enforced* via
    /// [`PredictConfig::deadline_states`]; in the lookahead control arm
    /// it is *reported only* via
    /// [`RuntimeConfig::report_deadline`](cb_core::runtime::RuntimeConfig::report_deadline),
    /// so `core.predict.deadline_overruns` counts how often unbounded
    /// prediction would have blown the budget.
    pub deadline_states: u64,
    /// Replace the default fault schedule with a fault *storm*: gray
    /// failures (stalls), a latency spike and a loss window layered over
    /// the crash/restart churn. Everything still heals well before the
    /// horizon, so the oracles must hold.
    pub storm: bool,
    /// Warm-start every node's ladder from this cross-run policy store
    /// (forces the [`LadderResolver`] arm). Loaded by `campaign --policy`.
    pub policy: Option<std::sync::Arc<cb_policy::PolicyStore>>,
    /// Record every fresh-lookahead decision into a policy store attached
    /// to the report (forces the [`LadderResolver`] arm). Driven by
    /// `campaign --record-policy`.
    pub record_policy: bool,
}

impl Default for RandTreeCampaign {
    fn default() -> Self {
        RandTreeCampaign {
            nodes: 15,
            horizon: SimTime::from_secs(900),
            lookahead: false,
            evalcache: true,
            ladder: false,
            deadline_states: 0,
            storm: false,
            policy: None,
            record_policy: false,
        }
    }
}

impl Scenario for RandTreeCampaign {
    fn name(&self) -> &'static str {
        "randtree"
    }

    fn node_count(&self) -> usize {
        self.nodes
    }

    fn default_plan(&self, seed: u64) -> FaultPlan {
        // Crash/restart a rotating non-root victim mid-join, add a healed
        // partition that temporarily splits off two other non-root nodes,
        // and a short loss window. Everything heals well before the
        // horizon, so the oracles must hold.
        let n = self.nodes as u64;
        let victim = 1 + (seed % (n - 1)) as u32;
        let pa = 1 + ((seed + 1) % (n - 1)) as u32;
        let pb = 1 + ((seed + 2) % (n - 1)) as u32;
        let mut plan = FaultPlan::none()
            .crash(victim, 3_000)
            .restart(victim, 8_000)
            .loss(0.05, 1_000, 5_000);
        if pa != victim && pb != victim && pa != pb {
            let others: Vec<u32> = (0..self.nodes as u32)
                .filter(|&i| i != pa && i != pb)
                .collect();
            plan = plan.partition(&[pa, pb], &others, 4_000, Some(10_000));
        }
        if self.storm {
            // Gray failures + latency spike layered on top: stall two
            // rotating non-root nodes (they freeze, then resume with their
            // deferred events — no crash detection fires), and storm the
            // whole mesh with extra latency and loss mid-join. Healed by
            // t=12s; the remaining horizon must repair the overlay.
            let sa = 1 + ((seed + 3) % (n - 1)) as u32;
            let sb = 1 + ((seed + 5) % (n - 1)) as u32;
            plan = plan.stall(sa, 2_000, 9_000).delayspike(200, 3_000, 12_000);
            if sb != sa {
                plan = plan.stall(sb, 4_000, 11_000);
            }
            plan = plan.loss(0.10, 2_500, 10_000);
        }
        plan
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let topo = Topology::transit_stub(
            &TransitStubConfig::default().with_at_least_hosts(self.nodes),
            &mut SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9)),
        );
        let nodes = self.nodes;
        let lookahead = self.lookahead;
        let evalcache = self.evalcache;
        let ladder = self.ladder || self.policy.is_some() || self.record_policy;
        let deadline = self.deadline_states;
        let policy = self.policy.clone();
        let recorder = self.record_policy.then(|| {
            std::sync::Arc::new(std::sync::Mutex::new(cb_policy::PolicyStore::new(
                self.name(),
            )))
        });
        let rec_for_nodes = recorder.clone();
        let mut sim: Sim<RuntimeNode<ChoiceRandTree>> = Sim::new(topo, seed, move |id| {
            let delay = SimDuration::from_millis(400) * (id.0 as u64 + 1);
            let resolver: Box<dyn Resolver> = if ladder {
                let mut l = LadderResolver::new();
                if let Some(store) = &policy {
                    l = l.with_policy(store.clone());
                }
                if let Some(rec) = &rec_for_nodes {
                    l = l.recording_into(rec.clone());
                }
                Box::new(l)
            } else if lookahead {
                Box::new(LookaheadResolver::new())
            } else {
                Box::new(RandomResolver::new(seed ^ ((id.0 as u64) << 8)))
            };
            // Mirrors `ChoiceRandTree::new`'s default prediction budget,
            // with only the cache knob threaded through (the random arm
            // never evaluates, so the config is inert there). The ladder
            // arm *enforces* the prediction deadline at the evaluator;
            // every other arm leaves it off and (when a deadline is set)
            // merely reports overruns via the runtime knob.
            let service =
                ChoiceRandTree::new(id, NodeId(0), delay).with_predict_config(PredictConfig {
                    depth: 8,
                    walks: 16,
                    cache: evalcache,
                    deadline_states: if ladder { deadline } else { 0 },
                    ..Default::default()
                });
            // Both arms report overruns against the same deadline; only
            // the ladder arm *enforces* it, so the control arm's overrun
            // counter is the experiment's headline number while the
            // ladder arm's must stay zero.
            let mut cfg =
                RuntimeConfig::new(resolver).controller_every(SimDuration::from_millis(500));
            if deadline > 0 {
                cfg = cfg.report_deadline(deadline);
            }
            RuntimeNode::new(service, cfg)
        });
        let participants: Vec<NodeId> = sim.topology().hosts().take(nodes).collect();
        for &n in &participants {
            sim.schedule_start(n, SimTime::ZERO);
        }
        plan.drive(&mut sim, seed ^ 0xc0ff_ee00, self.horizon);

        let stats = tree_stats(&sim, NodeId(0));
        let up = participants.iter().filter(|&&n| sim.is_up(n)).count();
        let verdicts = vec![
            OracleVerdict::check("tree.well_formed", stats.well_formed, format!("{stats:?}")),
            OracleVerdict::check(
                "tree.reachable",
                stats.reachable == up,
                format!("{} of {up} up nodes reachable from root", stats.reachable),
            ),
        ];
        // The runtime's controller timer re-arms forever, so RuntimeNode
        // scenarios never quiesce; skip the generic quiescence oracle.
        let mut report = RunReport::from_sim_quiescence(
            self.name(),
            seed,
            plan,
            &sim,
            self.horizon,
            verdicts,
            false,
        )
        .with_telemetry(fleet_telemetry(&sim));
        if let Some(rec) = recorder {
            report = report.with_policy(rec.lock().expect("policy recorder poisoned").clone());
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_passes() {
        let s = RandTreeCampaign::default();
        let r = s.run(3, &FaultPlan::none());
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn default_plan_recovers() {
        let s = RandTreeCampaign::default();
        let plan = s.default_plan(5);
        let r = s.run(5, &plan);
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn lookahead_arm_recovers_deterministically_and_uses_the_cache() {
        let s = RandTreeCampaign {
            lookahead: true,
            ..Default::default()
        };
        let plan = s.default_plan(7);
        let a = s.run(7, &plan);
        let b = s.run(7, &plan);
        assert!(!a.violated(), "{:?}", a.verdicts);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "lookahead arm nondeterministic"
        );
        // The lookahead arm routes decisions through the evaluator, so the
        // EvalCache accounting must be live (misses at minimum).
        let touched = a.telemetry.counter("core.evalcache.hits")
            + a.telemetry.counter("core.evalcache.misses");
        assert!(touched > 0, "EvalCache never engaged in the lookahead arm");
    }

    #[test]
    fn storm_ladder_arm_recovers_and_respects_the_deadline() {
        // The enforced arm: fault storm + LadderResolver + prediction
        // deadline. The overlay must still repair (oracles hold), every
        // decision must finish within the deadline (the runtime reports
        // overruns against the same budget — there must be none), and the
        // governor/ladder telemetry must show real degradation traffic:
        // at least one step-down and at least one recovery.
        let s = RandTreeCampaign {
            ladder: true,
            deadline_states: 20,
            storm: true,
            ..Default::default()
        };
        let plan = s.default_plan(9);
        let a = s.run(9, &plan);
        let b = s.run(9, &plan);
        assert!(!a.violated(), "{:?}", a.verdicts);
        assert_eq!(a.fingerprint, b.fingerprint, "ladder arm nondeterministic");
        let t = &a.telemetry;
        assert_eq!(
            t.counter("core.predict.deadline_overruns"),
            0,
            "enforced deadline overran"
        );
        assert!(
            t.counter("core.predict.partial_evals") > 0,
            "deadline never fired — the storm arm is not exercising degradation"
        );
        assert!(t.counter("core.governor.step_downs") > 0, "no step-down");
        assert!(t.counter("core.governor.recoveries") > 0, "no recovery");
        let rungs = t.counter("core.ladder.rung_lookahead")
            + t.counter("core.ladder.rung_cached")
            + t.counter("core.ladder.rung_heuristic")
            + t.counter("core.ladder.rung_static");
        assert!(rungs > 0, "ladder never resolved a decision");
        assert!(
            t.counter("core.ladder.rung_cached")
                + t.counter("core.ladder.rung_heuristic")
                + t.counter("core.ladder.rung_static")
                > 0,
            "ladder never left the lookahead rung"
        );
    }

    #[test]
    fn storm_lookahead_control_arm_records_deadline_overruns() {
        // The control arm: same storm, same deadline, but pure lookahead
        // with the deadline merely *reported*, not enforced. Unbounded
        // prediction must blow the budget — that contrast is the
        // experiment's headline.
        let s = RandTreeCampaign {
            lookahead: true,
            deadline_states: 20,
            storm: true,
            ..Default::default()
        };
        let plan = s.default_plan(9);
        let r = s.run(9, &plan);
        assert!(!r.violated(), "{:?}", r.verdicts);
        assert!(
            r.telemetry.counter("core.predict.deadline_overruns") > 0,
            "unbounded lookahead never overran the deadline"
        );
        assert_eq!(
            r.telemetry.counter("core.predict.partial_evals"),
            0,
            "control arm must not truncate evaluations"
        );
    }

    /// Regression (shrunk from the 32-seed storm sweep, seed 21): a
    /// joiner's `JoinAccepted` is dropped at a partition boundary, its
    /// retry later hits the parent's duplicate-reanswer path, and a stale
    /// ConnBroken from a pre-heal blocked send then disowns the child on
    /// the parent side only — the child still believes in the link. The
    /// attachment lease must detect the one-sided link and rejoin.
    #[test]
    fn dropped_accept_plus_stale_conn_break_heals_via_lease() {
        let s = RandTreeCampaign {
            lookahead: true,
            deadline_states: 20,
            storm: true,
            ..Default::default()
        };
        let plan = FaultPlan::from_spec(
            "part:9.10|0.1.2.3.4.5.6.7.8.11.12.13.14@4000-10000;delayspike:200@3000-12000",
        )
        .expect("spec");
        let r = s.run(21, &plan);
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    /// Regression (shrunk from the 32-seed storm sweep, seed 28): a node
    /// stalled across an entire partition window never transmits during
    /// it, so it never observes the link break that made its parent
    /// disown it. The peer-side break notification plus the attachment
    /// lease must restore mutual parent/child consistency.
    #[test]
    fn stall_across_partition_heals_via_peer_notification_and_lease() {
        let s = RandTreeCampaign {
            ladder: true,
            deadline_states: 20,
            storm: true,
            ..Default::default()
        };
        let plan = FaultPlan::from_spec(
            "part:2.3|0.1.4.5.6.7.8.9.10.11.12.13.14@4000-10000;stall:6@4000-11000",
        )
        .expect("spec");
        let r = s.run(28, &plan);
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn unhealed_partition_orphans_nodes() {
        let s = RandTreeCampaign::default();
        let others: Vec<u32> = (0..15u32).filter(|&i| i != 7 && i != 8).collect();
        let plan = FaultPlan::none().partition(&[7, 8], &others, 2_000, None);
        let r = s.run(11, &plan);
        assert!(r.violated(), "{:?}", r.verdicts);
        assert!(r.failing_oracles().contains(&"tree.reachable"));
    }
}
