//! The case-study scenarios: 31-node join and subtree-failure/rejoin.
//!
//! Reproduces the live experiment of §4: 31 participants on an
//! Internet-like (transit-stub) topology join the tree; then an entire
//! subtree — about half the nodes — fails and rejoins. Three setups are
//! compared: **Baseline** (hard-coded policy), **Choice-Random** (exposed
//! choice resolved uniformly), and **Choice-CrystalBall** (exposed choice
//! resolved by lookahead over the predictive model). The metric is maximum
//! tree depth in levels.

use crate::baseline::BaselineRandTree;
use crate::choice::ChoiceRandTree;
use crate::metrics::{tree_stats, HasTree, TreeStats};
use crate::proto::{TreeCheckpoint, TreeMsg};
use cb_core::choice::Resolver;
use cb_core::predict::PredictConfig;
use cb_core::resolve::lookahead::LookaheadResolver;
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{RuntimeConfig, RuntimeNode, Service};
use cb_simnet::sim::Sim;
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::{NodeId, Topology, TransitStubConfig};
use std::collections::HashMap;

/// The three experimental arms of §4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Setup {
    /// Hard-coded forwarding policy, no exposed choices.
    Baseline,
    /// Exposed choice resolved uniformly at random.
    ChoiceRandom,
    /// Exposed choice resolved by predictive lookahead.
    ChoiceCrystalBall,
}

impl Setup {
    /// All arms, in table order.
    pub const ALL: [Setup; 3] = [
        Setup::Baseline,
        Setup::ChoiceRandom,
        Setup::ChoiceCrystalBall,
    ];

    /// The label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Setup::Baseline => "Baseline",
            Setup::ChoiceRandom => "Choice-Random",
            Setup::ChoiceCrystalBall => "Choice-CrystalBall",
        }
    }

    fn resolver(self, seed: u64) -> Box<dyn Resolver> {
        match self {
            // The baseline never calls choose(); the resolver is inert.
            Setup::Baseline | Setup::ChoiceRandom => Box::new(RandomResolver::new(seed)),
            Setup::ChoiceCrystalBall => Box::new(LookaheadResolver::new()),
        }
    }
}

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Number of participants (the paper uses 31).
    pub nodes: usize,
    /// Base seed; every arm uses the same topology seed.
    pub seed: u64,
    /// Gap between consecutive joins.
    pub join_spacing: SimDuration,
    /// Prediction budget for the Choice-CrystalBall arm (None = default).
    pub predict: Option<PredictConfig>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            nodes: 31,
            seed: 1,
            join_spacing: SimDuration::from_millis(400),
            predict: None,
        }
    }
}

/// Outcome of one scenario run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Which arm ran.
    pub setup: Setup,
    /// Tree statistics after the join phase.
    pub after_join: TreeStats,
    /// Tree statistics after failure + rejoin (`None` for join-only runs).
    pub after_rejoin: Option<TreeStats>,
    /// Messages sent in total (cost accounting).
    pub msgs_sent: u64,
    /// Choice decisions logged across all nodes.
    pub decisions: u64,
}

fn internet_topology(nodes: usize, seed: u64) -> Topology {
    let cfg = TransitStubConfig::default().with_at_least_hosts(nodes);
    let mut rng = cb_simnet::rng::SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9));
    Topology::transit_stub(&cfg, &mut rng)
}

fn run_generic<S, F>(
    cfg: &ScenarioConfig,
    setup: Setup,
    with_failure: bool,
    make_service: F,
) -> Outcome
where
    S: Service<Msg = TreeMsg, Checkpoint = TreeCheckpoint> + HasTree,
    F: Fn(NodeId, SimDuration) -> S + Clone + 'static,
{
    let topo = internet_topology(cfg.nodes, cfg.seed);
    let nodes = cfg.nodes;
    let seed = cfg.seed;
    let spacing = cfg.join_spacing;
    let mut sim = Sim::new(topo, seed, move |id| {
        let delay = spacing * (id.0 as u64 + 1);
        RuntimeNode::new(
            make_service(id, delay),
            RuntimeConfig::new(setup.resolver(seed ^ (id.0 as u64) << 8))
                .controller_every(SimDuration::from_millis(500)),
        )
    });
    // Only the first `nodes` hosts participate (topology may be larger).
    let participants: Vec<NodeId> = sim.topology().hosts().take(nodes).collect();
    for &n in &participants {
        sim.schedule_start(n, SimTime::ZERO);
    }
    sim.run_until_quiescent(SimTime::from_secs(600));
    let after_join = tree_stats(&sim, NodeId(0));

    let after_rejoin = if with_failure {
        // Fail the largest depth-2 subtree (about half the nodes).
        let parent_of: HashMap<NodeId, Option<NodeId>> = participants
            .iter()
            .map(|&n| (n, sim.actor(n).service().tree().parent))
            .collect();
        let root_children: Vec<NodeId> = sim.actor(NodeId(0)).service().tree().children.clone();
        let subtree_of = |top: NodeId| -> Vec<NodeId> {
            let mut members = vec![top];
            let mut grew = true;
            while grew {
                grew = false;
                for &n in &participants {
                    if members.contains(&n) {
                        continue;
                    }
                    if let Some(Some(p)) = parent_of.get(&n) {
                        if members.contains(p) {
                            members.push(n);
                            grew = true;
                        }
                    }
                }
            }
            members
        };
        let victim_subtree = root_children
            .iter()
            .map(|&c| subtree_of(c))
            .max_by_key(|s| s.len())
            .unwrap_or_default();
        let t_fail = sim.now() + SimDuration::from_secs(5);
        for &n in &victim_subtree {
            sim.schedule_crash(n, t_fail);
        }
        // Staggered restarts; each rejoins via the root on its own timer.
        for (i, &n) in victim_subtree.iter().enumerate() {
            sim.schedule_restart(n, t_fail + SimDuration::from_secs(3) + spacing * i as u64);
        }
        sim.run_until_quiescent(sim.now() + SimDuration::from_secs(600));
        Some(tree_stats(&sim, NodeId(0)))
    } else {
        None
    };

    let msgs_sent = sim.summary().msgs_sent;
    let decisions = participants
        .iter()
        .map(|&n| sim.actor(n).decisions().len() as u64)
        .sum();
    Outcome {
        setup,
        after_join,
        after_rejoin,
        msgs_sent,
        decisions,
    }
}

/// Runs the join phase of the case study for one arm.
pub fn run_join(cfg: &ScenarioConfig, setup: Setup) -> Outcome {
    run_scenario(cfg, setup, false)
}

/// Runs join, subtree failure, and rejoin for one arm.
pub fn run_failure_rejoin(cfg: &ScenarioConfig, setup: Setup) -> Outcome {
    run_scenario(cfg, setup, true)
}

fn run_scenario(cfg: &ScenarioConfig, setup: Setup, with_failure: bool) -> Outcome {
    match setup {
        Setup::Baseline => run_generic(cfg, setup, with_failure, |id, delay| {
            BaselineRandTree::new(id, NodeId(0), delay)
        }),
        Setup::ChoiceRandom | Setup::ChoiceCrystalBall => {
            let predict = cfg.predict.clone();
            run_generic(cfg, setup, with_failure, move |id, delay| {
                let svc = ChoiceRandTree::new(id, NodeId(0), delay);
                match &predict {
                    Some(p) => svc.with_predict_config(p.clone()),
                    None => svc,
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::optimal_depth;

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            nodes: 15,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn join_all_arms_produce_full_trees() {
        for setup in Setup::ALL {
            let out = run_join(&small(), setup);
            assert!(
                out.after_join.well_formed,
                "{setup:?}: {:?}",
                out.after_join
            );
            assert_eq!(out.after_join.reachable, 15, "{setup:?}");
            assert!(
                out.after_join.max_depth >= optimal_depth(15, 2),
                "{setup:?}"
            );
            assert!(out.msgs_sent > 0);
        }
    }

    #[test]
    fn choice_arms_log_decisions_baseline_does_not() {
        let base = run_join(&small(), Setup::Baseline);
        assert_eq!(base.decisions, 0);
        let rand = run_join(&small(), Setup::ChoiceRandom);
        assert!(rand.decisions > 0);
        let cb = run_join(&small(), Setup::ChoiceCrystalBall);
        assert!(cb.decisions > 0);
    }

    #[test]
    fn failure_rejoin_recovers_membership() {
        for setup in [Setup::ChoiceRandom, Setup::ChoiceCrystalBall] {
            let out = run_failure_rejoin(&small(), setup);
            let after = out.after_rejoin.expect("rejoin stats");
            assert!(after.well_formed, "{setup:?}: {after:?}");
            assert_eq!(after.reachable, 15, "{setup:?}: {after:?}");
        }
    }

    #[test]
    fn crystalball_join_not_worse_than_random() {
        // Averaged over a few seeds to damp variance in the small test.
        let mut sum_rand = 0u32;
        let mut sum_cb = 0u32;
        for seed in [5u64, 6, 7] {
            let cfg = ScenarioConfig {
                nodes: 15,
                seed,
                ..Default::default()
            };
            sum_rand += run_join(&cfg, Setup::ChoiceRandom).after_join.max_depth;
            sum_cb += run_join(&cfg, Setup::ChoiceCrystalBall)
                .after_join
                .max_depth;
        }
        assert!(
            sum_cb <= sum_rand,
            "lookahead total depth {sum_cb} worse than random {sum_rand}"
        );
    }
}
