//! The choice-exposed RandTree (the paper's new programming model, §4).
//!
//! Compare with [`crate::baseline`]: the protocol is identical, but the
//! forwarding policy is gone. Where the baseline's monolithic join handler
//! buries a hard-coded strategy in nested conditionals and RNG calls, this
//! implementation consists of several short handlers, and the single real
//! decision — *where to forward a join when full* — is exposed to the
//! runtime as the choice point `"randtree.forward"`. The installed
//! objective ("prioritize building a balanced tree") is expressed as
//! *minimize the predicted attach depth* over the [`JoinDescent`] model.
//!
//! The code-metrics experiment (E1) counts the lines and branching of the
//! regions between the `[handlers:begin]` / `[handlers:end]` markers in
//! this file and the baseline's.

use crate::model::{attach_depth, JState, JoinDescent};
use crate::proto::{
    TreeCheckpoint, TreeMsg, TreeState, JOIN_TIMER, LEASE_CHECK_EVERY, LEASE_TIMEOUT, LEASE_TIMER,
    RETRY_TIMER,
};
use cb_core::choice::{ContextKey, OptionDesc};
use cb_core::model::state::NodeView;
use cb_core::objective::ObjectiveSet;
use cb_core::predict::{ModelEvaluator, PredictConfig};
use cb_core::runtime::{Service, ServiceCtx};
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::NodeId;
use std::collections::BTreeMap;

/// The service context type of both RandTree implementations.
type Ctx<'a, 'b> = ServiceCtx<'a, 'b, TreeMsg, TreeCheckpoint>;

/// How long a joiner waits before retrying an unanswered join.
const RETRY_AFTER: SimDuration = SimDuration::from_secs(8);

/// The choice-exposed RandTree service.
pub struct ChoiceRandTree {
    me: NodeId,
    root: NodeId,
    join_delay: SimDuration,
    /// Tree membership.
    pub tree: TreeState,
    objectives: ObjectiveSet<JState>,
    predict: PredictConfig,
    /// Joins this node forwarded (for experiment accounting).
    pub forwarded: u64,
    /// Joins this node adopted.
    pub adopted: u64,
    /// When the current attachment was established (lease baseline).
    attached_at: SimTime,
    /// Attachment leases that expired and forced a rejoin.
    pub lease_expired: u64,
}

impl ChoiceRandTree {
    /// Creates the service for node `me`; non-root nodes start their join
    /// `join_delay` after the node starts.
    pub fn new(me: NodeId, root: NodeId, join_delay: SimDuration) -> Self {
        ChoiceRandTree {
            me,
            root,
            join_delay,
            tree: TreeState::new(me, root),
            objectives: ObjectiveSet::new()
                .minimize("attach depth", 1.0, |s: &JState| attach_depth(s) as f64),
            predict: PredictConfig {
                depth: 8,
                walks: 16,
                ..Default::default()
            },
            forwarded: 0,
            adopted: 0,
            attached_at: SimTime::ZERO,
            lease_expired: 0,
        }
    }

    /// Overrides the prediction budget used when the resolver evaluates
    /// forwarding options (the A1 ablation sweeps this).
    pub fn with_predict_config(mut self, predict: PredictConfig) -> Self {
        self.predict = predict;
        self
    }

    /// Collects the known checkpoints (neighbors plus self) for the
    /// join-descent model.
    fn known_map(&self, ctx: &Ctx<'_, '_>) -> BTreeMap<u32, TreeCheckpoint> {
        let mut known: BTreeMap<u32, TreeCheckpoint> = ctx
            .state_model()
            .known()
            .filter_map(|n| match ctx.state_model().view(n) {
                NodeView::Known(s) => Some((n.0, s.state.clone())),
                NodeView::Generic => None,
            })
            .collect();
        known.insert(self.me.0, self.local_checkpoint(ctx.state_model()));
        known
    }

    /// Checkpoint with subtree aggregates folded in from the children's
    /// latest reports.
    fn local_checkpoint(
        &self,
        model: &cb_core::model::state::StateModel<TreeCheckpoint>,
    ) -> TreeCheckpoint {
        let mut size = 1;
        let mut height = 1;
        for &c in &self.tree.children {
            match model.view(c) {
                NodeView::Known(s) => {
                    size += s.state.subtree_size;
                    height = height.max(1 + s.state.subtree_height);
                }
                NodeView::Generic => {
                    size += 1;
                    height = height.max(2);
                }
            }
        }
        TreeCheckpoint {
            parent: self.tree.parent.map(|p| p.0),
            children: self.tree.children.iter().map(|c| c.0).collect(),
            depth: self.tree.depth,
            subtree_size: size,
            subtree_height: height,
        }
    }

    // [handlers:begin]

    /// Handler: a join request while this node has spare capacity — adopt.
    fn handle_join_adopt(&mut self, ctx: &mut Ctx<'_, '_>, joiner: NodeId) {
        self.tree.adopt(joiner);
        self.adopted += 1;
        ctx.send(
            joiner,
            TreeMsg::JoinAccepted {
                parent: self.me,
                depth: self.tree.depth + 1,
            },
        );
    }

    /// Handler: a join request while full — forward it. The target is an
    /// exposed choice; the runtime resolves it against the balanced-tree
    /// objective.
    fn handle_join_forward(&mut self, ctx: &mut Ctx<'_, '_>, joiner: NodeId) {
        let candidates: Vec<NodeId> = self.tree.children.clone();
        let known = self.known_map(ctx);
        let my_depth = self.tree.depth;
        let options: Vec<OptionDesc> = candidates
            .iter()
            .map(|c| {
                let (h, s) = match known.get(&c.0) {
                    Some(ck) => (ck.subtree_height as f64, ck.subtree_size as f64),
                    None => (1.0, 1.0),
                };
                OptionDesc::with_features(c.0 as u64, vec![h, s])
            })
            .collect();
        let rng = ctx.rng().fork();
        let mut eval = ModelEvaluator::new(
            |i| JoinDescent {
                known: known.clone(),
                start: candidates[i].0,
                start_depth: my_depth + 1,
                start_height: known
                    .get(&candidates[i].0)
                    .map_or(1, |ck| ck.subtree_height),
            },
            &self.objectives,
            self.predict.clone(),
            rng,
        );
        let context = ContextKey(candidates.len() as u64);
        let idx = ctx.choose_with("randtree.forward", context, &options, &mut eval);
        self.forwarded += 1;
        ctx.send(candidates[idx], TreeMsg::Join { joiner });
    }

    /// Handler: the join answer — record the attachment.
    fn handle_join_accepted(&mut self, ctx: &mut Ctx<'_, '_>, parent: NodeId, depth: u32) {
        self.tree.parent = Some(parent);
        self.tree.depth = depth;
        self.tree.attached = true;
        self.attached_at = ctx.now();
    }

    /// Handler: an ancestor moved — adjust depth and tell the children.
    fn handle_depth_update(&mut self, ctx: &mut Ctx<'_, '_>, depth: u32) {
        self.tree.depth = depth;
        for &c in &self.tree.children.clone() {
            ctx.send(c, TreeMsg::DepthUpdate { depth: depth + 1 });
        }
    }

    // [handlers:end]

    /// The child-side attachment lease (gray-failure repair).
    ///
    /// A live parent checkpoints to each child every controller cycle, so
    /// a healthy parent link keeps this node's model view of the parent
    /// fresh. When that view goes stale past
    /// [`LEASE_TIMEOUT`](crate::proto::LEASE_TIMEOUT) the link died in a
    /// way the transport never told us about — e.g. the break
    /// notification was lost to a partition window, superseded by a later
    /// reconnect, or this node was stalled across the whole incident. The
    /// parent has long since disowned us; rejoining restores mutual
    /// parent/child consistency.
    fn check_parent_lease(&mut self, ctx: &mut Ctx<'_, '_>) {
        if !self.tree.attached || self.me == self.root {
            return;
        }
        let Some(p) = self.tree.parent else { return };
        let renewed = match ctx.state_model().view(p) {
            NodeView::Known(s) => s.taken_at.max(self.attached_at),
            NodeView::Generic => self.attached_at,
        };
        if ctx.now().saturating_since(renewed) > LEASE_TIMEOUT {
            self.lease_expired += 1;
            self.tree.parent = None;
            self.tree.attached = false;
            self.tree.depth = 0;
            ctx.set_timer(SimDuration::from_millis(500), JOIN_TIMER);
        }
    }
}

impl Service for ChoiceRandTree {
    type Msg = TreeMsg;
    type Checkpoint = TreeCheckpoint;

    fn on_start(&mut self, ctx: &mut Ctx<'_, '_>) {
        if self.me != self.root {
            ctx.set_timer(self.join_delay, JOIN_TIMER);
            ctx.set_timer(LEASE_CHECK_EVERY, LEASE_TIMER);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, '_>, tag: u64) {
        if tag == LEASE_TIMER {
            self.check_parent_lease(ctx);
            ctx.set_timer(LEASE_CHECK_EVERY, LEASE_TIMER);
            return;
        }
        if (tag == JOIN_TIMER || tag == RETRY_TIMER) && !self.tree.attached {
            ctx.send(self.root, TreeMsg::Join { joiner: self.me });
            ctx.set_timer(RETRY_AFTER, RETRY_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, '_>, _from: NodeId, msg: TreeMsg) {
        match msg {
            TreeMsg::Join { joiner } if joiner == self.me || !self.tree.attached => {}
            TreeMsg::Join { joiner } if self.tree.children.contains(&joiner) => {
                // Duplicate (retry overtook the answer): re-answer.
                let depth = self.tree.depth + 1;
                ctx.send(
                    joiner,
                    TreeMsg::JoinAccepted {
                        parent: self.me,
                        depth,
                    },
                );
            }
            TreeMsg::Join { joiner } if self.tree.has_capacity() => {
                self.handle_join_adopt(ctx, joiner);
            }
            TreeMsg::Join { joiner } => self.handle_join_forward(ctx, joiner),
            TreeMsg::JoinAccepted { parent, depth } => {
                self.handle_join_accepted(ctx, parent, depth);
            }
            TreeMsg::DepthUpdate { depth } => self.handle_depth_update(ctx, depth),
        }
    }

    fn on_conn_broken(&mut self, ctx: &mut Ctx<'_, '_>, peer: NodeId) {
        self.tree.disown(peer);
        if self.tree.parent == Some(peer) {
            self.tree.parent = None;
            self.tree.attached = self.me == self.root;
            self.tree.depth = if self.me == self.root { 1 } else { 0 };
            ctx.set_timer(SimDuration::from_millis(500), JOIN_TIMER);
        }
    }

    fn checkpoint(
        &self,
        model: &cb_core::model::state::StateModel<TreeCheckpoint>,
    ) -> TreeCheckpoint {
        self.local_checkpoint(model)
    }

    fn neighbors(&self) -> Vec<NodeId> {
        let mut n = self.tree.children.clone();
        if let Some(p) = self.tree.parent {
            n.push(p);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_core::resolve::random::RandomResolver;
    use cb_core::runtime::{RuntimeConfig, RuntimeNode};
    use cb_simnet::sim::Sim;
    use cb_simnet::time::SimTime;
    use cb_simnet::topology::Topology;

    fn run_join(n: usize, seed: u64) -> Sim<RuntimeNode<ChoiceRandTree>> {
        let topo = Topology::star(n, SimDuration::from_millis(10), 50_000_000);
        let mut sim = Sim::new(topo, seed, move |id| {
            let delay = SimDuration::from_millis(200) * (id.0 as u64 + 1);
            RuntimeNode::new(
                ChoiceRandTree::new(id, NodeId(0), delay),
                RuntimeConfig::new(Box::new(RandomResolver::new(seed ^ id.0 as u64)))
                    .controller_every(SimDuration::from_millis(500)),
            )
        });
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(120));
        sim
    }

    #[test]
    fn seven_nodes_all_attach() {
        let sim = run_join(7, 3);
        for n in sim.topology().hosts() {
            let t = &sim.actor(n).service().tree;
            assert!(t.attached, "node {n} not attached: {t:?}");
        }
        // Exactly n-1 adoptions happened.
        let adopted: u64 = sim
            .topology()
            .hosts()
            .map(|n| sim.actor(n).service().adopted)
            .sum();
        assert_eq!(adopted, 6);
    }

    #[test]
    fn tree_is_acyclic_and_rooted() {
        let sim = run_join(15, 4);
        for n in sim.topology().hosts() {
            // Walk to the root; must terminate well within n steps.
            let mut at = n;
            for _ in 0..20 {
                match sim.actor(at).service().tree.parent {
                    Some(p) => at = p,
                    None => break,
                }
            }
            assert_eq!(at, NodeId(0), "walk from {n} did not reach the root");
        }
    }

    #[test]
    fn parent_child_links_agree() {
        let sim = run_join(15, 5);
        for n in sim.topology().hosts() {
            if let Some(p) = sim.actor(n).service().tree.parent {
                assert!(
                    sim.actor(p).service().tree.children.contains(&n),
                    "{p} does not know child {n}"
                );
            }
        }
    }

    #[test]
    fn depths_are_consistent_with_parents() {
        let sim = run_join(15, 6);
        for n in sim.topology().hosts() {
            let svc = sim.actor(n).service();
            if let Some(p) = svc.tree.parent {
                let pd = sim.actor(p).service().tree.depth;
                assert_eq!(svc.tree.depth, pd + 1, "depth of {n} vs parent {p}");
            }
        }
    }

    #[test]
    fn forwarding_makes_choices() {
        let sim = run_join(15, 7);
        let decisions: usize = sim
            .topology()
            .hosts()
            .map(|n| sim.actor(n).decisions().len())
            .sum();
        assert!(decisions > 0, "a 15-node join must forward at least once");
        // Every decision came from the single exposed choice point.
        for n in sim.topology().hosts() {
            for d in sim.actor(n).decisions() {
                assert_eq!(d.id, "randtree.forward");
            }
        }
    }

    #[test]
    fn crystalball_decisions_carry_predictions() {
        use cb_core::resolve::lookahead::LookaheadResolver;
        let topo = Topology::star(15, SimDuration::from_millis(10), 50_000_000);
        let mut sim = Sim::new(topo, 9, move |id| {
            let delay = SimDuration::from_millis(200) * (id.0 as u64 + 1);
            RuntimeNode::new(
                ChoiceRandTree::new(id, NodeId(0), delay),
                RuntimeConfig::new(Box::new(LookaheadResolver::new()))
                    .controller_every(SimDuration::from_millis(500)),
            )
        });
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(120));
        let with_predictions = sim
            .topology()
            .hosts()
            .flat_map(|n| sim.actor(n).decisions().to_vec())
            .filter(|d| d.prediction.is_some())
            .count();
        assert!(
            with_predictions > 0,
            "lookahead decisions must log their predictions"
        );
    }

    #[test]
    fn checkpoint_aggregates_children() {
        let sim = run_join(7, 8);
        let root = sim.actor(NodeId(0));
        let ck = root.service().local_checkpoint(root.state_model());
        assert!(
            ck.subtree_size >= 3,
            "root sees subtree of {}",
            ck.subtree_size
        );
        assert!(ck.subtree_height >= 2);
    }
}
