//! The join-descent model: RandTree's predictive transition system.
//!
//! When the choice-exposed RandTree must pick a forwarding target, the
//! runtime predicts where a join forwarded to each candidate would finally
//! attach. The prediction runs over a [`JoinDescent`] transition system
//! instantiated from the node's **state model** (its neighbors' checkpoints,
//! including the aggregated subtree statistics they report):
//!
//! * at a node whose checkpoint is known, the join either attaches (if the
//!   checkpoint shows spare capacity) or descends into one of its children;
//! * at a **generic node** — one without a checkpoint — the state is
//!   under-specified, so *both* optimistic and pessimistic attachment are
//!   enabled as alternative actions, and the weighted random walks of the
//!   evaluator average over them (paper §3.3.2's generic-node proposal).
//!
//! The objective fed to the evaluator is "minimize the final attach depth",
//! which is exactly the installed objective of the case study ("prioritize
//! building a balanced tree").

use crate::proto::{TreeCheckpoint, MAX_CHILDREN};
use cb_mck::system::TransitionSystem;
use std::collections::BTreeMap;

/// Where a simulated join currently is.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct JState {
    /// Node key the join request is at.
    pub at: u32,
    /// That node's depth in levels.
    pub depth: u32,
    /// Estimated height of the subtree below `at` (from ancestor reports),
    /// used to bound pessimistic attachment under generic nodes.
    pub height_hint: u32,
    /// Final attach depth once decided.
    pub done: Option<u32>,
}

/// One step of the simulated join descent.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub enum JAction {
    /// Attach as a child of the current node (it has spare capacity).
    Attach,
    /// Forward to this child and continue descending.
    Descend(u32),
    /// Generic node, optimistic: it happens to have capacity right here.
    GenericAttachShallow,
    /// Generic node, pessimistic: the join sinks to the bottom of the
    /// unknown subtree.
    GenericAttachDeep,
}

/// The join-descent transition system over a snapshot of checkpoints.
#[derive(Clone, Debug)]
pub struct JoinDescent {
    /// Checkpoints by node key (the evaluating node's state model plus its
    /// own fresh checkpoint).
    pub known: BTreeMap<u32, TreeCheckpoint>,
    /// The forwarding target being evaluated.
    pub start: u32,
    /// The target's depth in levels.
    pub start_depth: u32,
    /// Height hint for the target's subtree.
    pub start_height: u32,
}

impl TransitionSystem for JoinDescent {
    type State = JState;
    type Action = JAction;

    fn initial(&self) -> JState {
        JState {
            at: self.start,
            depth: self.start_depth,
            height_hint: self.start_height,
            done: None,
        }
    }

    fn actions(&self, s: &JState) -> Vec<JAction> {
        if s.done.is_some() {
            return Vec::new();
        }
        match self.known.get(&s.at) {
            Some(ck) => {
                if ck.children.len() < MAX_CHILDREN {
                    vec![JAction::Attach]
                } else {
                    ck.children.iter().map(|&c| JAction::Descend(c)).collect()
                }
            }
            // Under-specified generic node: both futures are possible.
            None => vec![JAction::GenericAttachShallow, JAction::GenericAttachDeep],
        }
    }

    fn step(&self, s: &JState, a: &JAction) -> JState {
        let mut next = s.clone();
        match a {
            JAction::Attach | JAction::GenericAttachShallow => {
                next.done = Some(s.depth + 1);
            }
            JAction::GenericAttachDeep => {
                next.done = Some(s.depth + s.height_hint.max(1));
            }
            JAction::Descend(c) => {
                next.at = *c;
                next.depth = s.depth + 1;
                // The child's own report, if known, refines the hint.
                next.height_hint = match self.known.get(c) {
                    Some(ck) => ck.subtree_height,
                    None => s.height_hint.saturating_sub(1).max(1),
                };
            }
        }
        next
    }

    fn locus(&self, _a: &JAction) -> usize {
        0
    }
}

/// The attach-depth estimate of a terminal state: the decided depth, or the
/// current depth plus one while still descending (an optimistic floor, used
/// when a walk is cut by its horizon).
pub fn attach_depth(s: &JState) -> u32 {
    s.done.unwrap_or(s.depth + 1)
}

/// Convenience: checkpoint of a node with the given links and aggregates.
pub fn checkpoint(
    parent: Option<u32>,
    children: Vec<u32>,
    depth: u32,
    subtree_size: u32,
    subtree_height: u32,
) -> TreeCheckpoint {
    TreeCheckpoint {
        parent,
        children,
        depth,
        subtree_size,
        subtree_height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_core::objective::ObjectiveSet;
    use cb_core::predict::{ModelEvaluator, PredictConfig};
    use cb_simnet::rng::SimRng;

    /// A 3-level known tree:
    /// 0 -> [1, 2]; 1 -> [3, 4] (full); 2 -> [5] (capacity).
    fn sample() -> BTreeMap<u32, TreeCheckpoint> {
        let mut m = BTreeMap::new();
        m.insert(0, checkpoint(None, vec![1, 2], 1, 6, 3));
        m.insert(1, checkpoint(Some(0), vec![3, 4], 2, 3, 2));
        m.insert(2, checkpoint(Some(0), vec![5], 2, 2, 2));
        m
    }

    #[test]
    fn attach_where_capacity_exists() {
        let sys = JoinDescent {
            known: sample(),
            start: 2,
            start_depth: 2,
            start_height: 2,
        };
        let s0 = sys.initial();
        assert_eq!(sys.actions(&s0), vec![JAction::Attach]);
        let s1 = sys.step(&s0, &JAction::Attach);
        assert_eq!(s1.done, Some(3));
        assert!(sys.actions(&s1).is_empty());
    }

    #[test]
    fn full_node_descends_to_each_child() {
        let sys = JoinDescent {
            known: sample(),
            start: 1,
            start_depth: 2,
            start_height: 2,
        };
        let s0 = sys.initial();
        let acts = sys.actions(&s0);
        assert_eq!(acts, vec![JAction::Descend(3), JAction::Descend(4)]);
        let s1 = sys.step(&s0, &JAction::Descend(3));
        assert_eq!(s1.at, 3);
        assert_eq!(s1.depth, 3);
    }

    #[test]
    fn generic_node_offers_both_futures() {
        let sys = JoinDescent {
            known: sample(),
            start: 9,
            start_depth: 4,
            start_height: 3,
        };
        let s0 = sys.initial();
        let acts = sys.actions(&s0);
        assert_eq!(
            acts,
            vec![JAction::GenericAttachShallow, JAction::GenericAttachDeep]
        );
        let shallow = sys.step(&s0, &JAction::GenericAttachShallow);
        let deep = sys.step(&s0, &JAction::GenericAttachDeep);
        assert_eq!(shallow.done, Some(5));
        assert_eq!(deep.done, Some(7));
    }

    #[test]
    fn evaluator_prefers_the_branch_with_capacity() {
        // From node 0's perspective: forwarding to 2 (capacity at depth 2)
        // should predict a shallower attach than forwarding to 1 (full,
        // descends to generic grandchildren).
        let known = sample();
        let objectives: ObjectiveSet<JState> =
            ObjectiveSet::new().minimize("attach depth", 1.0, |s: &JState| attach_depth(s) as f64);
        let starts = [(1u32, 2u32, 2u32), (2, 2, 2)];
        let mut eval = ModelEvaluator::new(
            |i| JoinDescent {
                known: known.clone(),
                start: starts[i].0,
                start_depth: starts[i].1,
                start_height: starts[i].2,
            },
            &objectives,
            PredictConfig {
                depth: 6,
                walks: 32,
                ..Default::default()
            },
            SimRng::seed_from(5),
        );
        use cb_core::choice::OptionEvaluator;
        let via_full = eval.evaluate(0);
        let via_free = eval.evaluate(1);
        assert!(
            via_free.objective > via_full.objective,
            "free branch {via_free:?} should beat full branch {via_full:?}"
        );
    }

    #[test]
    fn descent_refines_height_hint_from_child_reports() {
        let sys = JoinDescent {
            known: sample(),
            start: 0,
            start_depth: 1,
            start_height: 3,
        };
        let s0 = sys.initial();
        let s1 = sys.step(&s0, &JAction::Descend(1));
        assert_eq!(s1.height_hint, 2, "child 1 reported height 2");
        let s2 = sys.step(&s1, &JAction::Descend(3));
        // Node 3 is generic; hint decays from the parent's.
        assert_eq!(s2.height_hint, 1);
    }

    #[test]
    fn attach_depth_fallback_for_unfinished_walks() {
        let s = JState {
            at: 5,
            depth: 4,
            height_hint: 1,
            done: None,
        };
        assert_eq!(attach_depth(&s), 5);
        let s2 = JState { done: Some(9), ..s };
        assert_eq!(attach_depth(&s2), 9);
    }
}
