//! Tree-shape metrics: what the case study measures.
//!
//! The paper's §4 evaluates RandTree by tree balance, using maximum tree
//! depth (in levels, root = 1) as the headline metric. This module extracts
//! the global tree from a finished simulation, validates it, and computes
//! the depth and degree statistics the experiment tables report.

use crate::proto::TreeState;
use cb_core::runtime::{RuntimeNode, Service};
use cb_simnet::sim::Sim;
use cb_simnet::topology::NodeId;
use std::collections::HashMap;

/// Services that carry a [`TreeState`] (both RandTree implementations do).
pub trait HasTree {
    /// The node's current tree membership.
    fn tree(&self) -> &TreeState;
}

impl HasTree for crate::baseline::BaselineRandTree {
    fn tree(&self) -> &TreeState {
        &self.tree
    }
}

impl HasTree for crate::choice::ChoiceRandTree {
    fn tree(&self) -> &TreeState {
        &self.tree
    }
}

/// Global tree statistics extracted from a simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Nodes that report being attached (the root counts).
    pub attached: usize,
    /// Nodes that are actually reachable from the root by child links.
    pub reachable: usize,
    /// Maximum depth in levels (root = 1) over reachable nodes, computed
    /// from parent pointers (not the possibly stale local depth fields).
    pub max_depth: u32,
    /// Mean depth in levels over reachable nodes.
    pub mean_depth: f64,
    /// Maximum child count observed.
    pub max_degree: usize,
    /// True when parent/child links are mutually consistent and acyclic.
    pub well_formed: bool,
}

/// The information-theoretic optimal max depth (levels) for `n` nodes with
/// the given fanout.
pub fn optimal_depth(n: usize, fanout: usize) -> u32 {
    let mut total = 0usize;
    let mut level_width = 1usize;
    let mut depth = 0u32;
    while total < n {
        total += level_width;
        level_width *= fanout;
        depth += 1;
    }
    depth
}

/// Extracts tree statistics from the finished simulation.
///
/// Only nodes that are currently up participate. Depths are recomputed by
/// walking parent pointers from each node to the root.
pub fn tree_stats<S>(sim: &Sim<RuntimeNode<S>>, root: NodeId) -> TreeStats
where
    S: Service + HasTree,
{
    let up: Vec<NodeId> = sim.topology().hosts().filter(|&n| sim.is_up(n)).collect();
    let parent: HashMap<NodeId, Option<NodeId>> = up
        .iter()
        .map(|&n| (n, sim.actor(n).service().tree().parent))
        .collect();
    let attached = up
        .iter()
        .filter(|&&n| sim.actor(n).service().tree().attached)
        .count();

    let mut well_formed = true;
    // Parent/child mutual consistency.
    for &n in &up {
        if let Some(Some(p)) = parent.get(&n) {
            if !sim.is_up(*p) || !sim.actor(*p).service().tree().children.contains(&n) {
                well_formed = false;
            }
        }
    }
    // Depth by parent walk; cycle detection by bounding the walk.
    let mut depths: HashMap<NodeId, u32> = HashMap::new();
    let bound = up.len() + 1;
    for &n in &up {
        let mut at = n;
        let mut steps = 0u32;
        loop {
            if at == root {
                depths.insert(n, steps + 1);
                break;
            }
            match parent.get(&at).copied().flatten() {
                Some(p) if (steps as usize) < bound => {
                    at = p;
                    steps += 1;
                }
                _ => {
                    if (steps as usize) >= bound {
                        well_formed = false;
                    }
                    break;
                }
            }
        }
    }
    let reachable = depths.len();
    let max_depth = depths.values().copied().max().unwrap_or(0);
    let mean_depth = if reachable == 0 {
        0.0
    } else {
        depths.values().map(|&d| d as f64).sum::<f64>() / reachable as f64
    };
    let max_degree = up
        .iter()
        .map(|&n| sim.actor(n).service().tree().children.len())
        .max()
        .unwrap_or(0);
    TreeStats {
        attached,
        reachable,
        max_depth,
        mean_depth,
        max_degree,
        well_formed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_depths_match_hand_computation() {
        // Binary: 1 + 2 + 4 + 8 + 16 = 31 nodes in 5 levels.
        assert_eq!(optimal_depth(31, 2), 5);
        assert_eq!(optimal_depth(1, 2), 1);
        assert_eq!(optimal_depth(3, 2), 2);
        assert_eq!(optimal_depth(4, 2), 3);
        assert_eq!(optimal_depth(7, 2), 3);
        assert_eq!(optimal_depth(8, 2), 4);
        // Ternary: 1 + 3 + 9 = 13.
        assert_eq!(optimal_depth(13, 3), 3);
    }

    #[test]
    fn stats_on_a_real_join() {
        use crate::choice::ChoiceRandTree;
        use cb_core::resolve::random::RandomResolver;
        use cb_core::runtime::{RuntimeConfig, RuntimeNode};
        use cb_simnet::time::{SimDuration, SimTime};
        use cb_simnet::topology::Topology;

        let topo = Topology::star(15, SimDuration::from_millis(10), 50_000_000);
        let mut sim = Sim::new(topo, 21, move |id| {
            let delay = SimDuration::from_millis(150) * (id.0 as u64 + 1);
            RuntimeNode::new(
                ChoiceRandTree::new(id, NodeId(0), delay),
                RuntimeConfig::new(Box::new(RandomResolver::new(id.0 as u64)))
                    .controller_every(SimDuration::from_millis(500)),
            )
        });
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(120));
        let stats = tree_stats(&sim, NodeId(0));
        assert!(stats.well_formed, "{stats:?}");
        assert_eq!(stats.attached, 15);
        assert_eq!(stats.reachable, 15);
        assert!(stats.max_depth >= optimal_depth(15, 2), "{stats:?}");
        assert!(stats.max_depth <= 15, "{stats:?}");
        assert!(stats.max_degree <= crate::proto::MAX_CHILDREN);
        assert!(stats.mean_depth >= 1.0 && stats.mean_depth <= stats.max_depth as f64);
    }
}
