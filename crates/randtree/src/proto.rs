//! The RandTree wire protocol and checkpoint, shared by the baseline and
//! the choice-exposed implementations.
//!
//! RandTree (Killian et al., Mace) builds a random overlay tree: nodes join
//! through the root, and join requests are forwarded down the tree until a
//! node with spare child capacity adopts the joiner. Both of our
//! implementations speak exactly this protocol — they differ only in *how
//! the forwarding decision is made*, which is the entire point of the
//! paper's case study (§4).

use cb_simnet::time::SimDuration;
use cb_simnet::topology::NodeId;

/// Maximum children per node (binary tree, as in the 31-node case study:
/// optimal depth 5 levels for 31 nodes).
pub const MAX_CHILDREN: usize = 2;

/// The service timer tag for (re)join attempts.
pub const JOIN_TIMER: u64 = 1;

/// The service timer tag for the join-retry timeout.
pub const RETRY_TIMER: u64 = 2;

/// The service timer tag for the periodic parent-lease check.
pub const LEASE_TIMER: u64 = 3;

/// How often a child validates its parent lease.
pub const LEASE_CHECK_EVERY: SimDuration = SimDuration::from_secs(2);

/// Parent-view staleness beyond which the attachment lease is considered
/// expired and the child must rejoin.
///
/// A parent checkpoints to each child every controller cycle (hundreds of
/// milliseconds), so a live parent link keeps the child's model view of
/// the parent fresh; ~12 s of silence means dozens of consecutive missed
/// checkpoints — the link is dead in a way the transport never reported.
/// The classic interleaving is a break notification lost to a
/// crash/stall/partition window: the parent disowns the child and moves
/// on while the child still believes in the link, and nothing in the
/// base protocol ever repairs the asymmetry. The lease is the backstop
/// that restores mutual consistency.
pub const LEASE_TIMEOUT: SimDuration = SimDuration::from_secs(12);

/// Messages of the RandTree protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeMsg {
    /// A join request on behalf of `joiner`, forwarded down the tree.
    Join {
        /// The node that wants to join.
        joiner: NodeId,
    },
    /// The adopter tells the joiner it is attached.
    JoinAccepted {
        /// The new parent.
        parent: NodeId,
        /// The joiner's depth in levels (root = 1).
        depth: u32,
    },
    /// A parent informs a child that its depth changed (after the parent
    /// itself re-attached elsewhere).
    DepthUpdate {
        /// The child's new depth in levels.
        depth: u32,
    },
}

/// The checkpoint RandTree ships to its neighbors (parent and children).
///
/// Besides the local links it carries **aggregated subtree statistics**,
/// which each node computes from its children's last-reported checkpoints —
/// the paper's "service contributes state that keeps track of information
/// in other nodes" (§3.3.2). They propagate upward one controller cycle per
/// level, so they are eventually consistent, never exact.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TreeCheckpoint {
    /// Current parent, if attached.
    pub parent: Option<u32>,
    /// Current children (node ids).
    pub children: Vec<u32>,
    /// Own depth in levels (root = 1); 0 when not attached.
    pub depth: u32,
    /// Nodes in this subtree including self, per last child reports.
    pub subtree_size: u32,
    /// Height of this subtree in levels including self, per last reports.
    pub subtree_height: u32,
}

/// The tree-membership state both implementations maintain.
#[derive(Clone, Debug, Default)]
pub struct TreeState {
    /// This node's parent, when attached.
    pub parent: Option<NodeId>,
    /// Adopted children.
    pub children: Vec<NodeId>,
    /// Depth in levels (root = 1); 0 while unattached.
    pub depth: u32,
    /// True once attached (the root is attached from the start).
    pub attached: bool,
}

impl TreeState {
    /// Fresh state for a node: the root starts attached at depth 1.
    pub fn new(me: NodeId, root: NodeId) -> Self {
        if me == root {
            TreeState {
                parent: None,
                children: Vec::new(),
                depth: 1,
                attached: true,
            }
        } else {
            TreeState::default()
        }
    }

    /// True when another child can be adopted.
    pub fn has_capacity(&self) -> bool {
        self.children.len() < MAX_CHILDREN
    }

    /// Adds a child if not already present; returns whether it was added.
    pub fn adopt(&mut self, child: NodeId) -> bool {
        if self.children.contains(&child) {
            false
        } else {
            self.children.push(child);
            true
        }
    }

    /// Removes a child; returns whether it was present.
    pub fn disown(&mut self, child: NodeId) -> bool {
        let before = self.children.len();
        self.children.retain(|&c| c != child);
        self.children.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_starts_attached() {
        let s = TreeState::new(NodeId(0), NodeId(0));
        assert!(s.attached);
        assert_eq!(s.depth, 1);
        assert!(s.parent.is_none());
    }

    #[test]
    fn non_root_starts_detached() {
        let s = TreeState::new(NodeId(3), NodeId(0));
        assert!(!s.attached);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn capacity_is_max_children() {
        let mut s = TreeState::new(NodeId(0), NodeId(0));
        assert!(s.has_capacity());
        for i in 1..=MAX_CHILDREN as u32 {
            assert!(s.adopt(NodeId(i)));
        }
        assert!(!s.has_capacity());
    }

    #[test]
    fn adopt_is_idempotent() {
        let mut s = TreeState::new(NodeId(0), NodeId(0));
        assert!(s.adopt(NodeId(1)));
        assert!(!s.adopt(NodeId(1)));
        assert_eq!(s.children.len(), 1);
    }

    #[test]
    fn disown_removes() {
        let mut s = TreeState::new(NodeId(0), NodeId(0));
        s.adopt(NodeId(1));
        assert!(s.disown(NodeId(1)));
        assert!(!s.disown(NodeId(1)));
        assert!(s.children.is_empty());
    }
}
