//! # cb-randtree — the paper's case study, both ways
//!
//! RandTree (a random overlay tree, originally a Mace example service)
//! implemented twice over the explicit-choice runtime:
//!
//! * [`baseline`] — the released style: one monolithic join handler with
//!   the forwarding strategy hard-coded inside (nested conditionals,
//!   several RNG draws, accreted special cases).
//! * [`choice`] — the paper's programming model: several short handlers;
//!   the forwarding target is an **exposed choice** resolved by the runtime
//!   against the objective "prioritize building a balanced tree".
//!
//! [`model`] supplies the join-descent transition system the predictive
//! resolver explores; [`metrics`] measures tree shape; [`scenario`] scripts
//! the §4 experiments (31-node join; subtree failure and rejoin) across the
//! Baseline / Choice-Random / Choice-CrystalBall arms; [`campaign`]
//! registers the protocol with the `cb-harness` multi-seed campaign runner.

pub mod baseline;
pub mod campaign;
pub mod choice;
pub mod metrics;
pub mod model;
pub mod proto;
pub mod scenario;

pub use baseline::BaselineRandTree;
pub use campaign::RandTreeCampaign;
pub use choice::ChoiceRandTree;
pub use metrics::{optimal_depth, tree_stats, HasTree, TreeStats};
pub use model::{attach_depth, JAction, JState, JoinDescent};
pub use proto::{TreeCheckpoint, TreeMsg, TreeState, MAX_CHILDREN};
pub use scenario::{run_failure_rejoin, run_join, Outcome, ScenarioConfig, Setup};
