//! The baseline RandTree: the released, hard-coded implementation style.
//!
//! This is the "before" picture of the paper's case study (§4): the same
//! join protocol as [`crate::choice`], but with the forwarding strategy —
//! and all of its incidental policy — buried in one monolithic handler.
//! The handler mixes basic functionality with the embedded strategy: guard
//! cases, duplicate suppression, recently-used-child avoidance, occasional
//! bounce-to-parent, and several pseudo-random draws, exactly the texture
//! the paper describes ("the logic for making the forwarding decision is
//! fairly complex, and involves a few calls to a pseudo-random number
//! generator").
//!
//! The code-metrics experiment (E1) counts the lines and branching of the
//! region between the `[handlers:begin]` / `[handlers:end]` markers here
//! and in the choice version.

use crate::proto::{
    TreeCheckpoint, TreeMsg, TreeState, JOIN_TIMER, LEASE_CHECK_EVERY, LEASE_TIMEOUT, LEASE_TIMER,
    RETRY_TIMER,
};
use cb_core::model::state::{NodeView, StateModel};
use cb_core::runtime::{Service, ServiceCtx};
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::NodeId;
use std::collections::HashMap;

/// The service context type of both RandTree implementations.
type Ctx<'a, 'b> = ServiceCtx<'a, 'b, TreeMsg, TreeCheckpoint>;

/// How long a joiner waits before retrying an unanswered join.
const RETRY_AFTER: SimDuration = SimDuration::from_secs(8);

/// The baseline RandTree service with the hard-coded forwarding policy.
pub struct BaselineRandTree {
    me: NodeId,
    root: NodeId,
    join_delay: SimDuration,
    /// Tree membership.
    pub tree: TreeState,
    /// Last child each joiner's request was forwarded to (ping-pong
    /// avoidance — part of the embedded strategy).
    last_forward: HashMap<NodeId, NodeId>,
    /// Round-robin cursor over children (more embedded strategy state).
    rr_cursor: usize,
    /// Joins this node forwarded.
    pub forwarded: u64,
    /// Joins this node adopted.
    pub adopted: u64,
    /// When the current attachment was established (lease baseline).
    attached_at: SimTime,
    /// Attachment leases that expired and forced a rejoin.
    pub lease_expired: u64,
}

impl BaselineRandTree {
    /// Creates the service for node `me`.
    pub fn new(me: NodeId, root: NodeId, join_delay: SimDuration) -> Self {
        BaselineRandTree {
            me,
            root,
            join_delay,
            tree: TreeState::new(me, root),
            last_forward: HashMap::new(),
            rr_cursor: 0,
            forwarded: 0,
            adopted: 0,
            attached_at: SimTime::ZERO,
            lease_expired: 0,
        }
    }

    // [handlers:begin]

    /// The monolithic join handler: protocol logic and forwarding strategy
    /// interleaved, as in the released implementation.
    fn handle_join(&mut self, ctx: &mut Ctx<'_, '_>, from: NodeId, joiner: NodeId) {
        if joiner == self.me {
            return;
        }
        if !self.tree.attached && self.me != self.root {
            if let Some(p) = self.tree.parent {
                ctx.send(p, TreeMsg::Join { joiner });
            }
            return;
        }
        if self.tree.children.contains(&joiner) {
            let depth = self.tree.depth + 1;
            ctx.send(
                joiner,
                TreeMsg::JoinAccepted {
                    parent: self.me,
                    depth,
                },
            );
            return;
        }
        if self.tree.has_capacity() {
            if Some(joiner) == self.tree.parent {
                if let Some(p) = self.tree.parent {
                    ctx.send(p, TreeMsg::Join { joiner });
                    return;
                }
            }
            self.tree.adopt(joiner);
            self.adopted += 1;
            self.last_forward.remove(&joiner);
            let depth = self.tree.depth + 1;
            ctx.send(
                joiner,
                TreeMsg::JoinAccepted {
                    parent: self.me,
                    depth,
                },
            );
            return;
        }
        // Full: the embedded forwarding strategy. Mostly random, with
        // special cases accreted over time.
        let n = self.tree.children.len();
        let mut target;
        if n == 1 {
            target = self.tree.children[0];
        } else {
            let r = ctx.rng().gen_f64();
            if r < 0.70 {
                // Usual case: a uniformly random child.
                let i = ctx.rng().gen_index(n);
                target = self.tree.children[i];
            } else if r < 0.90 {
                // Sometimes rotate a cursor instead, to spread load.
                self.rr_cursor = (self.rr_cursor + 1) % n;
                target = self.tree.children[self.rr_cursor];
            } else {
                // Occasionally bounce upward to rebalance near the root.
                if let Some(p) = self.tree.parent {
                    if from != p {
                        target = p;
                    } else {
                        let i = ctx.rng().gen_index(n);
                        target = self.tree.children[i];
                    }
                } else {
                    let i = ctx.rng().gen_index(n);
                    target = self.tree.children[i];
                }
            }
            // Ping-pong avoidance: do not resend where we sent last time,
            // unless the draw says so twice.
            if let Some(&prev) = self.last_forward.get(&joiner) {
                if prev == target && ctx.rng().gen_f64() < 0.75 {
                    let mut alternatives: Vec<NodeId> = self
                        .tree
                        .children
                        .iter()
                        .copied()
                        .filter(|&c| c != prev)
                        .collect();
                    if let Some(p) = self.tree.parent {
                        if p != prev && p != from {
                            alternatives.push(p);
                        }
                    }
                    if !alternatives.is_empty() {
                        let i = ctx.rng().gen_index(alternatives.len());
                        target = alternatives[i];
                    }
                }
            }
        }
        if target == joiner {
            // Never forward a join to the joiner itself.
            if let Some(&other) = self.tree.children.iter().find(|&&c| c != joiner) {
                target = other;
            } else {
                return;
            }
        }
        self.last_forward.insert(joiner, target);
        self.forwarded += 1;
        ctx.send(target, TreeMsg::Join { joiner });
    }

    /// Accept/update handler: attachment bookkeeping plus child
    /// notifications, kept in one place as released code tends to.
    fn handle_accept_or_update(&mut self, ctx: &mut Ctx<'_, '_>, msg: TreeMsg) {
        match msg {
            TreeMsg::JoinAccepted { parent, depth } => {
                if !self.tree.attached {
                    self.tree.parent = Some(parent);
                    self.tree.depth = depth;
                    self.tree.attached = true;
                    self.attached_at = ctx.now();
                } else if self.tree.parent == Some(parent) && self.tree.depth != depth {
                    self.tree.depth = depth;
                    for &c in &self.tree.children.clone() {
                        ctx.send(c, TreeMsg::DepthUpdate { depth: depth + 1 });
                    }
                }
            }
            TreeMsg::DepthUpdate { depth } => {
                if self.tree.depth != depth {
                    self.tree.depth = depth;
                    for &c in &self.tree.children.clone() {
                        ctx.send(c, TreeMsg::DepthUpdate { depth: depth + 1 });
                    }
                }
            }
            TreeMsg::Join { .. } => unreachable!("routed to handle_join"),
        }
    }

    // [handlers:end]

    /// The child-side attachment lease; see
    /// [`ChoiceRandTree::check_parent_lease`](crate::choice::ChoiceRandTree)
    /// — both implementations carry the identical repair so the §4
    /// comparison stays about the forwarding decision alone.
    fn check_parent_lease(&mut self, ctx: &mut Ctx<'_, '_>) {
        if !self.tree.attached || self.me == self.root {
            return;
        }
        let Some(p) = self.tree.parent else { return };
        let renewed = match ctx.state_model().view(p) {
            NodeView::Known(s) => s.taken_at.max(self.attached_at),
            NodeView::Generic => self.attached_at,
        };
        if ctx.now().saturating_since(renewed) > LEASE_TIMEOUT {
            self.lease_expired += 1;
            self.tree.parent = None;
            self.tree.attached = false;
            self.tree.depth = 0;
            ctx.set_timer(SimDuration::from_millis(500), JOIN_TIMER);
        }
    }
}

impl Service for BaselineRandTree {
    type Msg = TreeMsg;
    type Checkpoint = TreeCheckpoint;

    fn on_start(&mut self, ctx: &mut Ctx<'_, '_>) {
        if self.me != self.root {
            ctx.set_timer(self.join_delay, JOIN_TIMER);
            ctx.set_timer(LEASE_CHECK_EVERY, LEASE_TIMER);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, '_>, tag: u64) {
        if tag == LEASE_TIMER {
            self.check_parent_lease(ctx);
            ctx.set_timer(LEASE_CHECK_EVERY, LEASE_TIMER);
            return;
        }
        if (tag == JOIN_TIMER || tag == RETRY_TIMER) && !self.tree.attached {
            ctx.send(self.root, TreeMsg::Join { joiner: self.me });
            ctx.set_timer(RETRY_AFTER, RETRY_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, '_>, from: NodeId, msg: TreeMsg) {
        match msg {
            TreeMsg::Join { joiner } => self.handle_join(ctx, from, joiner),
            other => self.handle_accept_or_update(ctx, other),
        }
    }

    fn on_conn_broken(&mut self, ctx: &mut Ctx<'_, '_>, peer: NodeId) {
        self.tree.disown(peer);
        self.last_forward.retain(|_, &mut t| t != peer);
        if self.tree.parent == Some(peer) {
            self.tree.parent = None;
            self.tree.attached = self.me == self.root;
            self.tree.depth = if self.me == self.root { 1 } else { 0 };
            ctx.set_timer(SimDuration::from_millis(500), JOIN_TIMER);
        }
    }

    fn checkpoint(&self, model: &StateModel<TreeCheckpoint>) -> TreeCheckpoint {
        let mut size = 1;
        let mut height = 1;
        for &c in &self.tree.children {
            match model.view(c) {
                NodeView::Known(s) => {
                    size += s.state.subtree_size;
                    height = height.max(1 + s.state.subtree_height);
                }
                NodeView::Generic => {
                    size += 1;
                    height = height.max(2);
                }
            }
        }
        TreeCheckpoint {
            parent: self.tree.parent.map(|p| p.0),
            children: self.tree.children.iter().map(|c| c.0).collect(),
            depth: self.tree.depth,
            subtree_size: size,
            subtree_height: height,
        }
    }

    fn neighbors(&self) -> Vec<NodeId> {
        let mut n = self.tree.children.clone();
        if let Some(p) = self.tree.parent {
            n.push(p);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_core::resolve::random::RandomResolver;
    use cb_core::runtime::{RuntimeConfig, RuntimeNode};
    use cb_simnet::sim::Sim;
    use cb_simnet::time::SimTime;
    use cb_simnet::topology::Topology;

    fn run_join(n: usize, seed: u64) -> Sim<RuntimeNode<BaselineRandTree>> {
        let topo = Topology::star(n, SimDuration::from_millis(10), 50_000_000);
        let mut sim = Sim::new(topo, seed, move |id| {
            let delay = SimDuration::from_millis(200) * (id.0 as u64 + 1);
            RuntimeNode::new(
                BaselineRandTree::new(id, NodeId(0), delay),
                RuntimeConfig::new(Box::new(RandomResolver::new(seed ^ id.0 as u64)))
                    .controller_every(SimDuration::from_millis(500)),
            )
        });
        sim.start_all();
        sim.run_until_quiescent(SimTime::from_secs(120));
        sim
    }

    #[test]
    fn all_nodes_attach() {
        let sim = run_join(15, 11);
        for n in sim.topology().hosts() {
            assert!(
                sim.actor(n).service().tree.attached,
                "node {n} not attached"
            );
        }
    }

    #[test]
    fn tree_is_acyclic_and_rooted() {
        let sim = run_join(15, 12);
        for n in sim.topology().hosts() {
            let mut at = n;
            for _ in 0..20 {
                match sim.actor(at).service().tree.parent {
                    Some(p) => at = p,
                    None => break,
                }
            }
            assert_eq!(at, NodeId(0), "walk from {n} did not reach root");
        }
    }

    #[test]
    fn baseline_makes_no_exposed_choices() {
        let sim = run_join(15, 13);
        for n in sim.topology().hosts() {
            assert!(
                sim.actor(n).decisions().is_empty(),
                "baseline must not call choose()"
            );
        }
    }

    #[test]
    fn respects_capacity() {
        let sim = run_join(31, 14);
        for n in sim.topology().hosts() {
            let c = sim.actor(n).service().tree.children.len();
            assert!(c <= crate::proto::MAX_CHILDREN, "node {n} has {c} children");
        }
    }

    #[test]
    fn parent_child_links_agree() {
        let sim = run_join(15, 15);
        for n in sim.topology().hosts() {
            if let Some(p) = sim.actor(n).service().tree.parent {
                assert!(sim.actor(p).service().tree.children.contains(&n));
            }
        }
    }
}
