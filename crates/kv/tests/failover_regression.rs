//! Seed-exact failover regressions.
//!
//! One fixed fault plan — replica 1 crashes at 20 s and restarts at 45 s,
//! replica 2 sits behind a partition from 25 s to 55 s (overlapping the
//! failover window), with a 5% loss band — exercised on both arms:
//!
//! * the **safe** arm must stay linearizable and finish every op, twice,
//!   with byte-identical masked provenance (the replay contract);
//! * the **unsafe-reads** arm must produce a linearizability violation
//!   whose synthesized `Violation` span `trace blame` can walk back to a
//!   `kv.read_replica` decision span — the exposed choice that routed a
//!   read to a stale replica. That chain is the whole point of decision
//!   provenance: the campaign does not just say "stale read", it says
//!   *which decision* picked the replica that served it.

use cb_harness::prelude::*;
use cb_kv::KvCampaign;
use cb_trace::{blame, explain, SpanKind};

/// The regression's fixed fault plan: a partition overlapping a failover.
fn failover_plan(nodes: usize) -> FaultPlan {
    let others: Vec<u32> = (0..nodes as u32).filter(|&i| i != 2).collect();
    FaultPlan::none()
        .crash(1, 20_000)
        .restart(1, 45_000)
        .loss(0.05, 15_000, 35_000)
        .partition(&[2], &others, 25_000, Some(55_000))
}

/// Seed pinned by search: the safe arm passes and the unsafe arm violates
/// under the same plan, so the pair isolates the read guard as the only
/// difference.
const SEED: u64 = 0;

#[test]
fn partition_during_failover_stays_linearizable() {
    let s = KvCampaign::default();
    let plan = failover_plan(s.node_count());
    let r = s.run(SEED, &plan);
    assert!(!r.violated(), "{:?}", r.verdicts);

    // Replay contract: same seed, same plan — identical fingerprint and
    // byte-identical masked provenance.
    let r2 = s.run(SEED, &plan);
    assert_eq!(r.fingerprint, r2.fingerprint);
    assert_eq!(
        r.provenance_masked_json().to_string_pretty(),
        r2.provenance_masked_json().to_string_pretty()
    );
}

#[test]
fn unsafe_reads_violate_and_blame_reaches_the_read_replica_decision() {
    let s = KvCampaign {
        unsafe_reads: true,
        ..KvCampaign::default()
    };
    let plan = failover_plan(s.node_count());
    let r = s.run(SEED, &plan);
    assert!(
        r.failing_oracles().contains(&"kv.linearizable"),
        "expected a stale read under unguarded reads: {:?}",
        r.verdicts
    );

    // The report synthesizes one Violation span per failing oracle,
    // parented on every node's last span and last decision span.
    let violation = r
        .provenance
        .iter()
        .find(|sp| sp.kind == SpanKind::Violation && sp.name == "kv.linearizable")
        .expect("violation span present in provenance");

    let chain = blame(&r.provenance, violation.id).expect("violation span resolvable");
    assert!(
        !chain.decisions.is_empty(),
        "blame walk reached no decisions"
    );

    // The walk must reach the decision that routed a read: some client's
    // last `kv.read_replica` pick.
    let read_pick = chain
        .chain
        .iter()
        .find(|sp| sp.kind == SpanKind::Decision && sp.name == "decide:kv.read_replica")
        .expect("blame chain contains a kv.read_replica decision");
    assert!(chain.decisions.contains(&read_pick.id));

    // And `trace explain` can render that decision.
    let rendered = explain(&r.provenance, read_pick.id).expect("explainable decision");
    assert!(rendered.contains("kv.read_replica"), "{rendered}");
}

#[test]
fn safe_and_unsafe_arms_differ_only_in_the_guard() {
    // Same seed, same plan, guard on vs off: the safe arm's verdicts are
    // all green while the unsafe arm fails linearizability — pinning the
    // violation on the read path rather than the fault schedule.
    let safe = KvCampaign::default();
    let unsafe_arm = KvCampaign {
        unsafe_reads: true,
        ..KvCampaign::default()
    };
    let plan = failover_plan(safe.node_count());
    assert!(!safe.run(SEED, &plan).violated());
    assert!(unsafe_arm
        .run(SEED, &plan)
        .failing_oracles()
        .contains(&"kv.linearizable"));
}
