//! Cross-run policy store contracts on the replicated KV.
//!
//! Three pins:
//!
//! * **Training determinism** — a `--record-policy` sweep merges per-seed
//!   stores with a commutative, associative, idempotent rule, so the
//!   recorded pile is byte-identical whether 1, 2, 4, or 8 workers claim
//!   the seeds.
//! * **Warm transparency** — a run warm-started from a store trained on
//!   the same seed resolves every decision to the same option key, so the
//!   whole-system trace fingerprint is *identical* to the recording run's,
//!   while `core.policy.hits` shows the lookaheads that were skipped.
//! * **Provenance** — a store-served decision is visible in the flight
//!   recorder: its `decide:kv.read_replica` span carries the
//!   `policy = hit` attribute, and when the unsafe-read arm turns that
//!   memoized routing into a stale read, `blame` walks from the
//!   linearizability violation back to exactly that store-served span.

use cb_harness::prelude::*;
use cb_kv::KvCampaign;
use cb_trace::{blame, SpanKind};
use std::sync::Arc;

#[test]
fn recorded_policy_store_is_worker_invariant() {
    let mut ids = Vec::new();
    let mut bytes = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let scenario = KvCampaign {
            record_policy: true,
            ..KvCampaign::default()
        };
        let cfg = CampaignConfig {
            seeds: 4,
            workers,
            check_determinism: false,
            shrink: false,
            artifact_dir: None,
            ..CampaignConfig::default()
        };
        let out = run_campaign(&scenario, &cfg);
        assert!(out.all_passed(), "{}", out.summary_line());
        let store = out.policy.expect("recording sweep attaches a store");
        assert!(!store.is_empty(), "nothing recorded");
        ids.push(store.content_id());
        bytes.push(store.to_bytes());
    }
    assert!(
        ids.windows(2).all(|w| w[0] == w[1]),
        "content ids diverged across worker counts: {ids:?}"
    );
    assert!(
        bytes.windows(2).all(|w| w[0] == w[1]),
        "serialized stores diverged across worker counts"
    );
}

#[test]
fn warm_run_is_decision_identical_to_the_recording_run() {
    // Fault-free on purpose: under fault-degraded health the cold ladder
    // answers from its heuristic rungs (which are never recorded), while a
    // warm store hit keeps serving the healthy-lookahead answer — so exact
    // decision equivalence is a healthy-path contract.
    const SEED: u64 = 3;
    let cold = KvCampaign {
        record_policy: true,
        ..KvCampaign::default()
    };
    let plan = FaultPlan::none();
    let cold_report = cold.run(SEED, &plan);
    assert!(!cold_report.violated(), "{:?}", cold_report.verdicts);
    let store = Arc::new(cold_report.policy.clone().expect("store recorded"));

    let warm = KvCampaign {
        policy: Some(store),
        ..KvCampaign::default()
    };
    let warm_report = warm.run(SEED, &plan);
    assert!(!warm_report.violated(), "{:?}", warm_report.verdicts);
    // Warm ≡ cold resolved keys ⇒ the same messages flow at the same sim
    // times ⇒ the whole-system fingerprints agree exactly.
    assert_eq!(
        cold_report.fingerprint, warm_report.fingerprint,
        "store-backed resolution changed a decision"
    );
    let t = &warm_report.telemetry;
    assert!(
        t.counter("core.policy.hits") > 0,
        "store never served a hit"
    );
    assert_eq!(
        t.counter("core.policy.stale"),
        0,
        "deterministic run went stale"
    );

    // Replay contract on the warm arm itself: byte-identical masked
    // provenance across reruns with the store loaded.
    let warm_again = warm.run(SEED, &plan);
    assert_eq!(warm_report.fingerprint, warm_again.fingerprint);
    assert_eq!(
        warm_report.provenance_masked_json().to_string_pretty(),
        warm_again.provenance_masked_json().to_string_pretty()
    );
}

/// Seed-exact regression: the fault-free-trained store memoizes both the
/// leader nomination and the read routing onto replica 0. Crash-restarting
/// replica 0 mid-run leaves it a recovering amnesiac with an empty store —
/// and with the memoized nomination pointing at a replica that cannot vote,
/// no new leader seats to sync it. The unsafe-read arm keeps answering from
/// that empty local store, so reads of committed pre-crash writes return
/// the initial value: the linearizability oracle fires, and `blame` walks
/// the violation back to a `decide:kv.read_replica` span whose provenance
/// says the policy store served it.
#[test]
fn warm_blame_walk_reaches_a_store_served_read_decision() {
    const SEED: u64 = 2;
    let trainer = KvCampaign {
        record_policy: true,
        ..KvCampaign::default()
    };
    let train_report = trainer.run(SEED, &FaultPlan::none());
    assert!(!train_report.violated(), "{:?}", train_report.verdicts);
    let store = Arc::new(train_report.policy.clone().expect("store recorded"));

    let warm = KvCampaign {
        policy: Some(store),
        unsafe_reads: true,
        ..KvCampaign::default()
    };
    let plan = FaultPlan::none().crash(0, 6_000).restart(0, 8_000);
    let r = warm.run(SEED, &plan);
    assert!(
        r.failing_oracles().contains(&"kv.linearizable"),
        "expected the memoized unguarded read to go stale: {:?}",
        r.verdicts
    );
    assert!(
        r.telemetry.counter("core.policy.hits") > 0,
        "store never served a hit"
    );

    let violation = r
        .provenance
        .iter()
        .find(|sp| sp.kind == SpanKind::Violation && sp.name == "kv.linearizable")
        .expect("violation span present");
    let chain = blame(&r.provenance, violation.id).expect("violation resolvable");
    let read_pick = chain
        .chain
        .iter()
        .find(|sp| sp.kind == SpanKind::Decision && sp.name == "decide:kv.read_replica")
        .expect("blame chain contains a kv.read_replica decision");
    assert!(
        read_pick
            .attrs
            .iter()
            .any(|(k, v)| k == "policy" && v == "hit"),
        "decision span lacks the store-served provenance attribute: {:?}",
        read_pick.attrs
    );
}
