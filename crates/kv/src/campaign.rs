//! Campaign registration: the replicated KV under fault schedules.
//!
//! A star-topology deployment — five replicas (`NodeId 0..5`), four client
//! sessions (`NodeId 5..9`) — checked against:
//!
//! * `kv.linearizable` (safety) — the concatenation of every session's
//!   recorded history is linearizable per key under the WGL checker. This
//!   is the scenario's heart: it holds regardless of crashes, partitions,
//!   elections, and fan-out choices — unless the `--unsafe-reads` arm
//!   removes the read guard, at which point a partitioned read replica
//!   serves stale values and this oracle fires.
//! * `kv.progress` (liveness-by-horizon) — once faults heal and a
//!   majority is back, every session finishes its operation budget before
//!   the horizon (sessions resubmit on timeout).

use crate::loadgen::LoadGen;
use crate::node::KvNode;
use crate::replica::{OverloadConfig, Replica};
use crate::session::Session;
use cb_core::resolve::random::RandomResolver;
use cb_core::runtime::{fleet_telemetry, RuntimeConfig, RuntimeNode};
use cb_harness::linearizability::{check_history, Op};
use cb_harness::overload;
use cb_harness::prelude::*;
use cb_harness::scenario::RunReport;
use cb_simnet::prelude::*;
use cb_workload::WorkloadProfile;

/// The campaign-facing replicated-KV scenario.
pub struct KvCampaign {
    /// Number of replicas (ids `0..replicas`).
    pub replicas: usize,
    /// Number of client sessions (ids `replicas..replicas+clients`).
    pub clients: usize,
    /// Operations per session.
    pub ops_per_client: u32,
    /// Distinct keys the workload touches.
    pub keys: u64,
    /// Run horizon.
    pub horizon: SimTime,
    /// Layer stalls, delay spikes, and heavier loss onto the default plan.
    pub storm: bool,
    /// Serve reads from the chosen replica's local store without a guard
    /// round — the deliberately unsound arm that the linearizability
    /// oracle exists to catch.
    pub unsafe_reads: bool,
    /// Warm-start every node's resolver from this cross-run policy store
    /// (switches the fleet from `RandomResolver` to the ladder). Loaded by
    /// `campaign --policy`.
    pub policy: Option<std::sync::Arc<cb_policy::PolicyStore>>,
    /// Record fresh-lookahead decisions into a policy store attached to
    /// the report (switches to the ladder). Driven by
    /// `campaign --record-policy`.
    pub record_policy: bool,
    /// Drive the fleet with an open-loop aggregate workload (switches to
    /// the ladder so the governor sees the load signal): one extra
    /// generator node, replica-side admission control per the profile,
    /// and the goodput-floor + metastability oracles. Driven by
    /// `campaign --workload <profile>`.
    pub workload: Option<WorkloadProfile>,
}

impl Default for KvCampaign {
    fn default() -> Self {
        KvCampaign {
            replicas: 5,
            clients: 4,
            ops_per_client: 12,
            keys: 4,
            horizon: SimTime::from_secs(180),
            storm: false,
            unsafe_reads: false,
            policy: None,
            record_policy: false,
            workload: None,
        }
    }
}

impl KvCampaign {
    /// Runs a campaign and returns the concatenated, completed-or-pending
    /// history — exposed for tests that want to inspect it directly.
    pub fn collect_history(
        sim: &Sim<RuntimeNode<KvNode>>,
        replicas: usize,
        clients: usize,
    ) -> Vec<Op> {
        let mut history = Vec::new();
        for i in replicas as u32..(replicas + clients) as u32 {
            if let Some(s) = sim.actor(NodeId(i)).service().as_session() {
                history.extend(s.history.iter().cloned());
            }
        }
        history
    }
}

impl Scenario for KvCampaign {
    fn name(&self) -> &'static str {
        "kv"
    }

    fn node_count(&self) -> usize {
        // The workload generator, when present, is the last node.
        self.replicas + self.clients + usize::from(self.workload.is_some())
    }

    fn default_plan(&self, seed: u64) -> FaultPlan {
        // Crash one rotating replica mid-run and restart it (majority
        // stays up), cut a different replica off behind a healed
        // partition, and add a loss window; a storm layers stalls and a
        // delay spike on top. Clients are never faulted.
        let r = self.replicas as u64;
        let victim = (seed % r) as u32;
        let cut = ((seed + 2) % r) as u32;
        let mut plan = FaultPlan::none()
            .crash(victim, 20_000)
            .restart(victim, 45_000)
            .loss(0.05, 10_000, 30_000);
        if cut != victim {
            let others: Vec<u32> = (0..self.node_count() as u32)
                .filter(|&i| i != cut)
                .collect();
            plan = plan.partition(&[cut], &others, 30_000, Some(60_000));
        }
        if self.storm {
            let stalled = ((seed + 3) % r) as u32;
            plan = plan
                .stall(stalled, 12_000, 22_000)
                .delayspike(150, 8_000, 25_000)
                .loss(0.10, 65_000, 80_000);
        }
        plan
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let topo = Topology::star(self.node_count(), SimDuration::from_millis(20), 20_000_000);
        let group: Vec<NodeId> = (0..self.replicas as u32).map(NodeId).collect();
        let replicas = self.replicas;
        let clients = self.clients;
        let per_client = self.ops_per_client;
        let keys = self.keys;
        let unsafe_reads = self.unsafe_reads;
        let group_clone = group.clone();
        // Workload arms always run the ladder: only a health-aware
        // resolver owns the governor the load signal is wired into.
        let ladder = self.policy.is_some() || self.record_policy || self.workload.is_some();
        let policy = self.policy.clone();
        let workload = self.workload.clone();
        // Offered load ends at two-thirds of the horizon, leaving a tail
        // in which a healthy fleet must drain and recover (what the
        // metastability oracle judges).
        let windows = workload.as_ref().map_or(0, |p| {
            (self.horizon.as_nanos() * 2 / 3) / p.window.as_nanos().max(1)
        });
        // Under a workload the controller runs faster: governor recovery
        // takes `up_patience` observations, and those must fit inside the
        // profile's recovery window even on nodes that stop deciding.
        let controller_every = if workload.is_some() {
            SimDuration::from_secs(1)
        } else {
            SimDuration::from_secs(5)
        };
        let recorder = self.record_policy.then(|| {
            std::sync::Arc::new(std::sync::Mutex::new(cb_policy::PolicyStore::new(
                self.name(),
            )))
        });
        let rec_for_nodes = recorder.clone();
        let mut sim: Sim<RuntimeNode<KvNode>> = Sim::new(topo, seed, move |id| {
            let svc = if (id.0 as usize) < replicas {
                let mut r = Replica::new(id, group_clone.clone(), unsafe_reads);
                if let Some(p) = &workload {
                    r = r.with_overload(OverloadConfig::from_profile(p));
                }
                KvNode::Replica(r)
            } else if (id.0 as usize) < replicas + clients {
                KvNode::Client(Session::new(id, group_clone.clone(), keys, per_client))
            } else if let Some(p) = workload
                .clone()
                .filter(|_| id.0 as usize == replicas + clients)
            {
                KvNode::Load(LoadGen::new(id, group_clone.clone(), p, seed, windows))
            } else {
                KvNode::Idle
            };
            let resolver: Box<dyn cb_core::choice::Resolver> = if ladder {
                let mut l = cb_core::resolve::ladder::LadderResolver::new();
                if let Some(store) = &policy {
                    l = l.with_policy(store.clone());
                }
                if let Some(rec) = &rec_for_nodes {
                    l = l.recording_into(rec.clone());
                }
                Box::new(l)
            } else {
                Box::new(RandomResolver::new(seed ^ ((id.0 as u64) << 24)))
            };
            RuntimeNode::new(
                svc,
                RuntimeConfig::new(resolver).controller_every(controller_every),
            )
        });
        for i in 0..self.node_count() as u32 {
            sim.schedule_start(NodeId(i), SimTime::ZERO);
        }
        plan.drive(&mut sim, seed ^ 0x5eed, self.horizon);

        // Linearizability: the WGL checker over all sessions' histories.
        let history = Self::collect_history(&sim, replicas, clients);
        let lin = match check_history(&history) {
            Ok(()) => OracleVerdict::pass(
                "kv.linearizable",
                format!("{} ops linearizable", history.len()),
            ),
            Err(v) => OracleVerdict::fail("kv.linearizable", v.detail()),
        };
        // Progress: every session finished its budget.
        let mut completed = 0usize;
        for i in replicas as u32..(replicas + clients) as u32 {
            if let Some(s) = sim.actor(NodeId(i)).service().as_session() {
                completed += s.completed();
            }
        }
        let target = clients * per_client as usize;
        let fleet = fleet_telemetry(&sim);
        let mut verdicts = vec![
            lin,
            OracleVerdict::check(
                "kv.progress",
                completed >= target,
                format!("{completed}/{target} ops completed"),
            ),
        ];
        if let Some(p) = &self.workload {
            verdicts.push(overload::goodput_floor(&fleet, p.goodput_floor));
            // The overload source is the flash crowd when there is one,
            // otherwise the end of offered load altogether.
            let windows_end = SimTime::from_nanos(windows * p.window.as_nanos());
            let quiet_after = if p.flash_mult > 1.0 {
                p.flash_end.min(windows_end)
            } else {
                windows_end
            };
            verdicts.push(overload::metastability(
                &fleet,
                quiet_after,
                p.recovery_window,
                self.horizon,
            ));
        }
        // Replica ticks and session sweeps re-arm forever; skip the
        // quiescence oracle.
        let mut report = RunReport::from_sim_quiescence(
            self.name(),
            seed,
            plan,
            &sim,
            self.horizon,
            verdicts,
            false,
        )
        .with_telemetry(fleet);
        if let Some(rec) = recorder {
            report = report.with_policy(rec.lock().expect("policy recorder poisoned").clone());
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_passes() {
        let s = KvCampaign::default();
        let r = s.run(1, &FaultPlan::none());
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn default_plan_recovers() {
        let s = KvCampaign::default();
        let plan = s.default_plan(3);
        let r = s.run(3, &plan);
        assert!(!r.violated(), "{:?}", r.verdicts);
    }

    #[test]
    fn storm_keeps_linearizability() {
        let s = KvCampaign {
            storm: true,
            ..KvCampaign::default()
        };
        let plan = s.default_plan(5);
        let r = s.run(5, &plan);
        let failing = r.failing_oracles();
        assert!(!failing.contains(&"kv.linearizable"), "{:?}", r.verdicts);
    }

    #[test]
    fn flash_crowd_sheds_steps_down_and_recovers() {
        let s = KvCampaign {
            workload: WorkloadProfile::by_name("flash"),
            ..KvCampaign::default()
        };
        let r = s.run(11, &FaultPlan::none());
        assert!(!r.violated(), "{:?}", r.verdicts);
        let t = &r.telemetry;
        use cb_telemetry::keys;
        assert!(
            t.counter(keys::WORKLOAD_SHED) > 0,
            "admission must shed under a 6x flash"
        );
        assert!(
            t.counter(keys::CORE_GOVERNOR_CAUSE_LOAD) >= 1,
            "the load signal must step the governor down"
        );
        assert!(
            t.counter(keys::CORE_GOVERNOR_RECOVERIES) >= 1,
            "the fleet must recover after the flash"
        );
        assert_eq!(
            t.gauge(keys::CORE_GOVERNOR_RUNG),
            0,
            "every node Healthy at the horizon"
        );
    }

    #[test]
    fn retry_storm_seed_goes_metastable_without_protection() {
        // Seed-exact regression for the unprotected arm: admission off +
        // unbounded retries turn a finite flash crowd into self-sustaining
        // overload, and the metastability oracle must say so.
        let s = KvCampaign {
            workload: WorkloadProfile::by_name("flash-off"),
            ..KvCampaign::default()
        };
        let r = s.run(33, &FaultPlan::none());
        assert!(r.violated(), "{:?}", r.verdicts);
        assert!(
            r.failing_oracles().contains(&"workload.metastable"),
            "{:?}",
            r.verdicts
        );
        use cb_telemetry::keys;
        let offered = r.telemetry.counter(keys::WORKLOAD_OFFERED);
        let attempts = r.telemetry.counter(keys::WORKLOAD_ATTEMPTS);
        assert!(
            attempts > offered * 2,
            "retry amplification drives the storm: {attempts} attempts vs {offered} offered"
        );
        // The storm is deterministic: the same seed reproduces it exactly.
        let r2 = s.run(33, &FaultPlan::none());
        assert_eq!(r.fingerprint, r2.fingerprint);
        assert_eq!(attempts, r2.telemetry.counter(keys::WORKLOAD_ATTEMPTS));
    }

    #[test]
    fn a_million_users_cost_thousands_of_events_not_millions() {
        let s = KvCampaign {
            workload: WorkloadProfile::by_name("million"),
            ..KvCampaign::default()
        };
        let r = s.run(2, &FaultPlan::none());
        assert!(!r.violated(), "{:?}", r.verdicts);
        use cb_telemetry::keys;
        let offered = r.telemetry.counter(keys::WORKLOAD_OFFERED);
        assert!(offered >= 1_000_000, "offered only {offered}");
        // Aggregate-flow modeling: the whole population costs orders of
        // magnitude fewer sim events than users served.
        assert!(
            r.events_processed < offered / 10,
            "{} events for {offered} offered ops",
            r.events_processed
        );
    }

    #[test]
    fn majority_loss_stalls_progress_but_keeps_linearizability() {
        let s = KvCampaign::default();
        // Permanently cut three of five replicas off: no quorum, no
        // progress — but every answered op must still linearize.
        let others: Vec<u32> = (0..9u32).filter(|&i| i > 2).collect();
        let plan = FaultPlan::none().partition(&[0, 1, 2], &others, 5_000, None);
        let r = s.run(7, &plan);
        assert!(r.violated(), "{:?}", r.verdicts);
        let failing = r.failing_oracles();
        assert!(failing.contains(&"kv.progress"), "{failing:?}");
        assert!(!failing.contains(&"kv.linearizable"), "{failing:?}");
    }
}
