//! The unified KV node: replica or client session, one [`Service`] type.

use crate::loadgen::{LoadGen, GEN_RETRY, GEN_WINDOW};
use crate::proto::KvMsg;
use crate::replica::{KvCheckpoint, Replica, REPLICA_TICK, WORK_TICK};
use crate::session::{Session, OP_TIMER, SWEEP_TIMER};
use cb_core::model::state::StateModel;
use cb_core::runtime::{Service, ServiceCtx};
use cb_simnet::topology::NodeId;

/// A node of the KV deployment.
pub enum KvNode {
    /// A storage replica.
    Replica(Replica),
    /// A client session.
    Client(Session),
    /// The aggregate open-loop workload generator.
    Load(LoadGen),
    /// A host that takes no part (topology filler).
    Idle,
}

impl KvNode {
    /// The replica inside, if this is one.
    pub fn as_replica(&self) -> Option<&Replica> {
        match self {
            KvNode::Replica(r) => Some(r),
            _ => None,
        }
    }

    /// The session inside, if this is one.
    pub fn as_session(&self) -> Option<&Session> {
        match self {
            KvNode::Client(s) => Some(s),
            _ => None,
        }
    }

    /// The workload generator inside, if this is one.
    pub fn as_loadgen(&self) -> Option<&LoadGen> {
        match self {
            KvNode::Load(g) => Some(g),
            _ => None,
        }
    }
}

impl Service for KvNode {
    type Msg = KvMsg;
    type Checkpoint = KvCheckpoint;

    fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, KvMsg, KvCheckpoint>) {
        match self {
            KvNode::Replica(r) => r.on_start(ctx),
            KvNode::Client(s) => {
                // Probe every replica so the network model is warm before
                // the first read-replica choice.
                for &r in &s.group.clone() {
                    ctx.probe(r);
                }
                s.on_start(ctx);
            }
            KvNode::Load(g) => g.on_start(ctx),
            KvNode::Idle => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_, '_, KvMsg, KvCheckpoint>, tag: u64) {
        match self {
            KvNode::Replica(r) => match tag {
                REPLICA_TICK => r.tick(ctx),
                WORK_TICK => r.drain_work(ctx),
                _ => {}
            },
            KvNode::Client(s) => match tag {
                OP_TIMER => s.next_op(ctx),
                SWEEP_TIMER if !s.done() => s.sweep(ctx),
                _ => {}
            },
            KvNode::Load(g) => match tag {
                GEN_WINDOW => g.on_window(ctx),
                GEN_RETRY => g.on_retry_sweep(ctx),
                _ => {}
            },
            KvNode::Idle => {}
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, KvMsg, KvCheckpoint>,
        from: NodeId,
        msg: KvMsg,
    ) {
        match self {
            KvNode::Replica(r) => r.handle(ctx, from, msg),
            KvNode::Client(s) => match msg {
                KvMsg::PutAck { client_seq } => s.on_put_ack(ctx, client_seq),
                KvMsg::GetAck { read_id, value } => s.on_get_ack(ctx, read_id, value),
                KvMsg::Redirect { leader } => s.on_redirect(leader),
                _ => {}
            },
            KvNode::Load(g) => match msg {
                KvMsg::BatchAck {
                    bucket,
                    attempt,
                    shed,
                    ..
                } => g.on_batch_ack(ctx, bucket, attempt, shed),
                KvMsg::BatchDone {
                    bucket,
                    attempt,
                    served,
                    expired,
                } => g.on_batch_done(ctx, bucket, attempt, served, expired),
                _ => {}
            },
            KvNode::Idle => {}
        }
    }

    fn checkpoint(&self, _model: &StateModel<KvCheckpoint>) -> KvCheckpoint {
        match self {
            KvNode::Replica(r) => r.checkpoint(),
            _ => KvCheckpoint {
                term: 0,
                role: 0,
                keys: 0,
            },
        }
    }

    fn neighbors(&self) -> Vec<NodeId> {
        match self {
            KvNode::Replica(r) => r.group_peers(),
            _ => Vec::new(),
        }
    }
}
