//! The KV replica: leader, follower, or recovering amnesiac.
//!
//! A term-based primary/backup protocol shaped like Viewstamped
//! Replication:
//!
//! * **Writes** go to the leader, which assigns a `(term, seq)` version,
//!   applies locally, and replicates to a **fan-out** of followers chosen
//!   through the exposed `kv.fanout` choice (a 1 s repair sweep re-sends
//!   unacked entries to everyone, so the choice trades commit latency
//!   against message load, never safety). A write commits — and the client
//!   is acked — once a majority holds it.
//! * **Reads** are fenced by a **guard** round: the leader asks a majority
//!   to confirm its term is still the newest they know, then answers from
//!   the committed map. A guard majority intersects any newer election
//!   majority, so a deposed leader can never serve a stale read. The
//!   `unsafe_reads` arm skips the guard and answers from the local store of
//!   whichever replica the client picked — the deliberately-injected
//!   staleness the linearizability oracle and `trace blame` exist to catch.
//! * **Elections**: a follower that misses heartbeats nominates a leader
//!   through the exposed `kv.leader` choice and broadcasts a vote request
//!   for the next term. Each replica votes at most once per term (term
//!   monotonicity is the guard) and its grant carries a full store
//!   snapshot; the winner merges a majority's snapshots per-key by max
//!   version — every committed write lives in every majority, so the merge
//!   cannot lose one. The new leader **re-replicates** the merged store
//!   under its own term and serves no client traffic until that round
//!   commits, closing the window where merged-but-uncommitted state could
//!   be served and then lost.
//! * **Restarts** are amnesia: the simulator rebuilds the actor from
//!   scratch. A replica that starts with the clock already running knows it
//!   is an amnesiac and enters the *recovering* role: it never votes and
//!   never acks writes (its empty store must not count toward quorum
//!   intersection) until the current leader answers its `SyncReq` with a
//!   full state transfer.

use crate::proto::{Entry, KvMsg, SeqSnapshot, StoreSnapshot, Version};
use cb_core::choice::{ContextKey, OptionDesc};
use cb_core::runtime::ServiceCtx;
use cb_harness::linearizability::INIT_VALUE;
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::NodeId;
use cb_telemetry::keys;
use cb_workload::WorkloadProfile;
use std::collections::{BTreeMap, VecDeque};

/// The replica's periodic timer tag (heartbeat / election check / repair).
pub const REPLICA_TICK: u64 = 1;
/// The aggregate work-queue drain timer (workload arms only).
pub const WORK_TICK: u64 = 2;

const TICK_BASE_MS: u64 = 400;
const TICK_JITTER_MS: u64 = 250;
/// A follower that misses heartbeats for this long starts an election.
const ELECTION_AFTER: SimDuration = SimDuration::from_millis(2_500);
/// Pending writes unacked for this long are re-replicated to everyone.
const REPAIR_AFTER: SimDuration = SimDuration::from_millis(1_000);
/// Guarded reads a deposed leader can never finish are dropped after this.
const GUARD_TTL: SimDuration = SimDuration::from_secs(5);

/// What a replica currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Normal backup: applies replicated writes, votes, acks guards.
    Follower,
    /// The primary of `term`: accepts writes, fences reads.
    Leader,
    /// Freshly restarted amnesiac: no votes, no write acks, until synced.
    Recovering,
}

/// Front-end overload knobs, lifted from a [`WorkloadProfile`]: how fast
/// the replica drains aggregate work, when queued work is too old to be
/// worth serving, and whether admission control guards the queue at all.
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// Profile name, stamped as the `workload` attr on admission decisions.
    pub workload: &'static str,
    /// Admission control + load shedding on (off = the metastable arm).
    pub admission: bool,
    /// Requests served per drain interval.
    pub service_rate: u64,
    /// Drain interval.
    pub drain_every: SimDuration,
    /// Queue wait beyond which a request is served too late to count.
    pub deadline: SimDuration,
    /// Admission limit: max backlog in drain-interval units.
    pub admit_limit: u64,
}

impl OverloadConfig {
    /// The overload knobs of `profile`.
    pub fn from_profile(profile: &WorkloadProfile) -> Self {
        OverloadConfig {
            workload: profile.name,
            admission: profile.admission,
            service_rate: profile.service_rate.max(1),
            drain_every: profile.drain_every,
            deadline: profile.deadline,
            admit_limit: profile.admit_limit,
        }
    }
}

/// An admitted aggregate bucket waiting in the front-end queue.
struct WorkBucket {
    enqueued: SimTime,
    origin: NodeId,
    bucket: u64,
    attempt: u32,
    /// Requests still unserved in this bucket.
    remaining: u64,
    /// Served-in-time so far (partial drains across ticks).
    served: u64,
    /// Served-too-late so far.
    expired: u64,
}

/// The aggregate front-end work queue (workload arms only).
struct WorkQueue {
    cfg: OverloadConfig,
    queue: VecDeque<WorkBucket>,
    /// Total requests queued (sum of `remaining`).
    depth: u64,
}

/// A write the leader has accepted but not yet committed.
struct PendingWrite {
    key: u64,
    value: u64,
    client: NodeId,
    client_seq: u32,
    /// Replicas known to hold the write (includes the leader).
    acks: Vec<NodeId>,
    /// Clients to notify on commit (empty for takeover re-replication).
    ackers: Vec<NodeId>,
    /// Last (re)send time, driving the repair sweep.
    since: SimTime,
    /// When the write was first accepted (fan-out reward clock).
    accepted_at: SimTime,
    /// Part of the post-election re-replication round.
    takeover: bool,
    /// The fan-out degree the `kv.fanout` choice picked (feedback key).
    fanout: usize,
}

/// An in-flight guarded read.
struct GuardRead {
    client: NodeId,
    key: u64,
    read_id: u32,
    acks: Vec<NodeId>,
    since: SimTime,
}

/// Service checkpoint: enough for peers' state models to see progress.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct KvCheckpoint {
    /// Current term.
    pub term: u64,
    /// 0 follower, 1 leader, 2 recovering.
    pub role: u8,
    /// Keys held.
    pub keys: u64,
}

type Cx<'a, 'b> = ServiceCtx<'a, 'b, KvMsg, KvCheckpoint>;

/// One replica of the KV group.
pub struct Replica {
    me: NodeId,
    /// The replica group, in index order.
    pub group: Vec<NodeId>,
    /// Answer reads locally without a guard round (the injected-bug arm).
    pub unsafe_reads: bool,
    /// Current term (monotone; doubles as the single-vote-per-term guard).
    pub term: u64,
    /// Current role.
    pub role: Role,
    leader: Option<NodeId>,
    last_heartbeat: SimTime,
    store: BTreeMap<u64, Entry>,
    /// client id -> highest write sequence applied (exactly-once dedup).
    last_seq: BTreeMap<u32, u32>,
    /// Leader-only: per-key last *committed* (version, value) — what
    /// guarded reads serve.
    committed: BTreeMap<u64, (Version, u64)>,
    next_seq: u64,
    pending: BTreeMap<Version, PendingWrite>,
    /// Leader-only: the takeover re-replication round has committed and
    /// client traffic may be served.
    ready: bool,
    guards: BTreeMap<u64, GuardRead>,
    next_guard: u64,
    /// Candidate tally: term -> voter -> snapshot.
    grants: BTreeMap<u64, BTreeMap<NodeId, (StoreSnapshot, SeqSnapshot)>>,
    fanout_cursor: usize,
    /// This incarnation started with the clock already running. Unlike
    /// [`Role::Recovering`] (which a sync clears), this never clears: the
    /// incarnation has forgotten any vote or guard ack its predecessor
    /// gave, so granting either again could seat a second quorum in a
    /// term the predecessor already helped decide.
    was_restarted: bool,
    /// Elections this replica started (report color).
    pub elections_started: u64,
    /// Terms this replica won (report color).
    pub terms_led: u64,
    /// Aggregate front-end work queue; present only in workload arms.
    work: Option<WorkQueue>,
}

impl Replica {
    /// Creates a replica of `group`.
    pub fn new(me: NodeId, group: Vec<NodeId>, unsafe_reads: bool) -> Self {
        Replica {
            me,
            group,
            unsafe_reads,
            term: 0,
            role: Role::Follower,
            leader: None,
            last_heartbeat: SimTime::ZERO,
            store: BTreeMap::new(),
            last_seq: BTreeMap::new(),
            committed: BTreeMap::new(),
            next_seq: 0,
            pending: BTreeMap::new(),
            ready: false,
            guards: BTreeMap::new(),
            next_guard: 0,
            grants: BTreeMap::new(),
            fanout_cursor: 0,
            was_restarted: false,
            elections_started: 0,
            terms_led: 0,
            work: None,
        }
    }

    /// Enables the aggregate front-end work queue (open-loop workload
    /// arms): [`KvMsg::Batch`] buckets pass the `kv.admission` choice,
    /// queue, and drain at `cfg.service_rate` per [`WORK_TICK`].
    pub fn with_overload(mut self, cfg: OverloadConfig) -> Self {
        self.work = Some(WorkQueue {
            cfg,
            queue: VecDeque::new(),
            depth: 0,
        });
        self
    }

    /// Current front-end backlog in requests (0 without a workload arm).
    pub fn backlog(&self) -> u64 {
        self.work.as_ref().map_or(0, |w| w.depth)
    }

    fn quorum(&self) -> usize {
        self.group.len() / 2 + 1
    }

    fn peers(&self) -> Vec<NodeId> {
        self.group
            .iter()
            .copied()
            .filter(|&n| n != self.me)
            .collect()
    }

    /// The other group members (checkpoint recipients).
    pub fn group_peers(&self) -> Vec<NodeId> {
        self.peers()
    }

    fn store_snapshot(&self) -> StoreSnapshot {
        self.store.iter().map(|(k, e)| (*k, e.clone())).collect()
    }

    fn seq_snapshot(&self) -> SeqSnapshot {
        self.last_seq.iter().map(|(c, s)| (*c, *s)).collect()
    }

    fn merge_entry(&mut self, key: u64, e: Entry) {
        let newer = self.store.get(&key).is_none_or(|cur| e.ver > cur.ver);
        if newer {
            self.store.insert(key, e);
        }
    }

    fn merge_seq(&mut self, client: u32, seq: u32) {
        let c = self.last_seq.entry(client).or_insert(0);
        *c = (*c).max(seq);
    }

    /// Startup (and restart): a replica whose clock is already running is
    /// an amnesiac and must recover before participating in quorums.
    pub fn on_start(&mut self, ctx: &mut Cx<'_, '_>) {
        if ctx.now() > SimTime::ZERO {
            self.role = Role::Recovering;
            self.was_restarted = true;
        }
        let first = SimDuration::from_millis(50 + ctx.rng().gen_below(TICK_JITTER_MS));
        ctx.set_timer(first, REPLICA_TICK);
        if let Some(w) = &self.work {
            ctx.set_timer(w.cfg.drain_every, WORK_TICK);
        }
    }

    /// Admission: the front door of the aggregate work queue. Below the
    /// limit the whole bucket is admitted outright; above it, the exposed
    /// `kv.admission` choice picks between two *safe* dispositions —
    /// trim-to-limit or shed-the-bucket — so any resolver arm (random,
    /// ladder, policy-warmed) keeps the queue bounded. With admission off,
    /// everything is admitted and only the deadline protects capacity
    /// (it does not: that arm is the metastable one).
    pub fn on_batch(
        &mut self,
        ctx: &mut Cx<'_, '_>,
        origin: NodeId,
        bucket: u64,
        attempt: u32,
        count: u64,
    ) {
        let now = ctx.now();
        let Some(w) = &mut self.work else {
            // Not a workload arm: shed everything, deterministically.
            ctx.send(
                origin,
                KvMsg::BatchAck {
                    bucket,
                    attempt,
                    admitted: 0,
                    shed: count,
                },
            );
            return;
        };
        let cfg = w.cfg.clone();
        let limit = cfg.admit_limit * cfg.service_rate;
        let backlog_units = w.depth / cfg.service_rate;
        let admitted = if !cfg.admission || w.depth + count <= limit {
            count
        } else {
            // Overload: both options keep the queue bounded; the choice is
            // how much of this bucket survives. Features feed heuristic /
            // learned rungs: current backlog (in drain units) and the
            // incoming bucket, in the same units.
            let headroom = limit.saturating_sub(w.depth);
            let opts = [
                OptionDesc::with_features(
                    0,
                    vec![backlog_units as f64, (count / cfg.service_rate) as f64],
                ),
                OptionDesc::with_features(
                    1,
                    vec![backlog_units as f64, (count / cfg.service_rate) as f64],
                ),
            ];
            ctx.decision_attr("workload", cfg.workload);
            let chosen = ctx.choose("kv.admission", ContextKey(backlog_units), &opts);
            if chosen == 0 {
                headroom
            } else {
                0
            }
        };
        let shed = count - admitted;
        ctx.count(keys::WORKLOAD_ADMITTED, admitted);
        ctx.count(keys::WORKLOAD_SHED, shed);
        let w = self.work.as_mut().expect("work queue present");
        if admitted > 0 {
            w.depth += admitted;
            w.queue.push_back(WorkBucket {
                enqueued: now,
                origin,
                bucket,
                attempt,
                remaining: admitted,
                served: 0,
                expired: 0,
            });
        }
        ctx.send(
            origin,
            KvMsg::BatchAck {
                bucket,
                attempt,
                admitted,
                shed,
            },
        );
        ctx.report_load(w.depth / w.cfg.service_rate);
    }

    /// One drain interval: serve up to `service_rate` queued requests in
    /// FIFO order. Work that waited past the deadline is "served" into the
    /// void — the capacity is spent, but its users already gave up — and
    /// reported as expired so the generator can model their retries. Also
    /// refreshes the runtime's load signal, which is what steps the
    /// governor down under sustained overload.
    pub fn drain_work(&mut self, ctx: &mut Cx<'_, '_>) {
        let Some(w) = &mut self.work else { return };
        let now = ctx.now();
        let mut budget = w.cfg.service_rate;
        let mut done: Vec<(NodeId, u64, u32, u64, u64)> = Vec::new();
        while budget > 0 {
            let Some(front) = w.queue.front_mut() else {
                break;
            };
            let late = now.saturating_since(front.enqueued) > w.cfg.deadline;
            let take = budget.min(front.remaining);
            front.remaining -= take;
            if late {
                front.expired += take;
            } else {
                front.served += take;
            }
            budget -= take;
            w.depth -= take;
            if front.remaining == 0 {
                let b = w.queue.pop_front().expect("front exists");
                done.push((b.origin, b.bucket, b.attempt, b.served, b.expired));
            }
        }
        let load = w.depth / w.cfg.service_rate;
        let interval = w.cfg.drain_every;
        for (origin, bucket, attempt, served, expired) in done {
            ctx.count(keys::WORKLOAD_SERVED, served);
            ctx.count(keys::WORKLOAD_EXPIRED, expired);
            ctx.send(
                origin,
                KvMsg::BatchDone {
                    bucket,
                    attempt,
                    served,
                    expired,
                },
            );
        }
        ctx.report_load(load);
        ctx.set_timer(interval, WORK_TICK);
    }

    /// The periodic tick: heartbeats + repair (leader), election check
    /// (follower), sync retry (recovering).
    pub fn tick(&mut self, ctx: &mut Cx<'_, '_>) {
        let now = ctx.now();
        match self.role {
            Role::Leader => {
                for p in self.peers() {
                    ctx.send(p, KvMsg::Heartbeat { term: self.term });
                }
                self.repair(ctx, now);
                self.guards
                    .retain(|_, g| now.saturating_since(g.since) < GUARD_TTL);
            }
            Role::Follower => {
                if now.saturating_since(self.last_heartbeat) > ELECTION_AFTER {
                    self.start_election(ctx);
                }
            }
            Role::Recovering => {
                for p in self.peers() {
                    ctx.send(p, KvMsg::SyncReq);
                }
            }
        }
        let delay = SimDuration::from_millis(TICK_BASE_MS + ctx.rng().gen_below(TICK_JITTER_MS));
        ctx.set_timer(delay, REPLICA_TICK);
    }

    fn repair(&mut self, ctx: &mut Cx<'_, '_>, now: SimTime) {
        let peers = self.peers();
        let term = self.term;
        let mut resend = Vec::new();
        for (&ver, p) in self.pending.iter_mut() {
            if now.saturating_since(p.since) >= REPAIR_AFTER {
                p.since = now;
                resend.push((ver, p.key, p.value, p.client, p.client_seq));
            }
        }
        for (ver, key, value, client, client_seq) in resend {
            for &p in &peers {
                ctx.send(
                    p,
                    KvMsg::Replicate {
                        term,
                        ver,
                        key,
                        value,
                        client,
                        client_seq,
                    },
                );
            }
        }
    }

    fn start_election(&mut self, ctx: &mut Cx<'_, '_>) {
        self.elections_started += 1;
        let term = self.term + 1;
        // The exposed leader-election choice: nominate any group member,
        // with the runtime-measured latency as a feature so learned
        // resolvers can prefer well-connected leaders.
        let now = ctx.now();
        let options: Vec<OptionDesc> = self
            .group
            .iter()
            .map(|&r| {
                let latency_ms = if r == self.me {
                    0.0
                } else {
                    ctx.net_model()
                        .predicted_latency(r, now)
                        .map_or(40.0, |(l, _)| l.as_millis_f64())
                };
                OptionDesc::with_features(r.0 as u64, vec![latency_ms])
            })
            .collect();
        let i = ctx.choose("kv.leader", ContextKey::default(), &options);
        let candidate = self.group[i];
        for p in self.peers() {
            ctx.send(p, KvMsg::VoteReq { term, candidate });
        }
        self.on_vote_req(ctx, term, candidate);
    }

    fn step_down(&mut self) {
        self.role = Role::Follower;
        self.leader = None;
        self.pending.clear();
        self.guards.clear();
        self.committed.clear();
        self.ready = false;
    }

    /// Adopt a strictly newer term observed on any message.
    fn observe_newer_term(&mut self, term: u64) {
        if term > self.term {
            self.term = term;
            if self.role == Role::Leader {
                self.step_down();
            }
        }
    }

    fn on_vote_req(&mut self, ctx: &mut Cx<'_, '_>, term: u64, candidate: NodeId) {
        // One vote per term: granting sets `self.term = term`, so a second
        // request for the same term fails the strict comparison. Amnesiacs
        // never vote — their empty store must not count toward the
        // election quorum that guarantees committed writes survive.
        // A restarted incarnation stays banned even after it syncs: the
        // in-memory single-vote guard cannot cover a grant its forgotten
        // predecessor gave, and a double grant lets two candidates both
        // reach quorum in the same term.
        if self.was_restarted || self.role == Role::Recovering || term <= self.term {
            return;
        }
        self.observe_newer_term(term);
        self.leader = None;
        self.last_heartbeat = ctx.now(); // grace period for the winner
        let store = self.store_snapshot();
        let last_seq = self.seq_snapshot();
        if candidate == self.me {
            self.on_vote_grant(ctx, self.me, term, store, last_seq);
        } else {
            ctx.send(
                candidate,
                KvMsg::VoteGrant {
                    term,
                    store,
                    last_seq,
                },
            );
        }
    }

    fn on_vote_grant(
        &mut self,
        ctx: &mut Cx<'_, '_>,
        from: NodeId,
        term: u64,
        store: StoreSnapshot,
        last_seq: SeqSnapshot,
    ) {
        if term < self.term || self.role == Role::Recovering {
            return;
        }
        if self.role == Role::Leader && self.term == term {
            return;
        }
        let quorum = self.quorum();
        let tally = self.grants.entry(term).or_default();
        tally.insert(from, (store, last_seq));
        if tally.len() >= quorum {
            self.become_leader(ctx, term);
        }
    }

    fn become_leader(&mut self, ctx: &mut Cx<'_, '_>, term: u64) {
        self.term = term;
        self.role = Role::Leader;
        self.leader = Some(self.me);
        self.terms_led += 1;
        self.next_seq = 0;
        self.pending.clear();
        self.guards.clear();
        self.committed.clear();
        let tally = self.grants.remove(&term).unwrap_or_default();
        self.grants.retain(|&t, _| t > term);
        for (_, (store, seqs)) in tally {
            for (k, e) in store {
                self.merge_entry(k, e);
            }
            for (c, s) in seqs {
                self.merge_seq(c, s);
            }
        }
        // Re-replicate the merged store under this term before serving any
        // client: a merged entry might be uncommitted (held by one voter),
        // and serving it before a fresh majority holds it could surface a
        // value that a subsequent failover then loses.
        self.ready = self.store.is_empty();
        let now = ctx.now();
        let peers = self.peers();
        let entries: Vec<(u64, Entry)> = self.store.iter().map(|(k, e)| (*k, e.clone())).collect();
        for (key, e) in entries {
            self.pending.insert(
                e.ver,
                PendingWrite {
                    key,
                    value: e.value,
                    client: e.client,
                    client_seq: e.client_seq,
                    acks: vec![self.me],
                    ackers: Vec::new(),
                    since: now,
                    accepted_at: now,
                    takeover: true,
                    fanout: peers.len(),
                },
            );
            for &p in &peers {
                ctx.send(
                    p,
                    KvMsg::Replicate {
                        term,
                        ver: e.ver,
                        key,
                        value: e.value,
                        client: e.client,
                        client_seq: e.client_seq,
                    },
                );
            }
        }
        for &p in &peers {
            ctx.send(p, KvMsg::Heartbeat { term });
        }
    }

    fn on_heartbeat(&mut self, ctx: &mut Cx<'_, '_>, from: NodeId, term: u64) {
        if term < self.term {
            return;
        }
        self.observe_newer_term(term);
        if self.role == Role::Recovering {
            // Remember who leads so recovery has a target, but stay out of
            // quorums until synced.
            self.leader = Some(from);
            return;
        }
        self.role = Role::Follower;
        self.leader = Some(from);
        self.last_heartbeat = ctx.now();
    }

    #[allow(clippy::too_many_arguments)]
    fn on_replicate(
        &mut self,
        ctx: &mut Cx<'_, '_>,
        from: NodeId,
        term: u64,
        ver: Version,
        key: u64,
        value: u64,
        client: NodeId,
        client_seq: u32,
    ) {
        if term < self.term {
            return; // stale leader
        }
        self.observe_newer_term(term);
        if self.role == Role::Recovering {
            self.leader = Some(from);
            return; // no acks until synced
        }
        self.role = Role::Follower;
        self.leader = Some(from);
        self.last_heartbeat = ctx.now();
        self.merge_entry(
            key,
            Entry {
                ver,
                value,
                client,
                client_seq,
            },
        );
        self.merge_seq(client.0, client_seq);
        // Ack even when the entry was superseded locally: the ack means
        // "my state reflects this write or a newer one", which is exactly
        // what the commit quorum needs.
        ctx.send(from, KvMsg::ReplicateAck { term, ver });
    }

    fn on_replicate_ack(&mut self, ctx: &mut Cx<'_, '_>, from: NodeId, term: u64, ver: Version) {
        if self.role != Role::Leader || term != self.term {
            return;
        }
        let quorum = self.quorum();
        let Some(p) = self.pending.get_mut(&ver) else {
            return;
        };
        if !p.acks.contains(&from) {
            p.acks.push(from);
        }
        if p.acks.len() < quorum {
            return;
        }
        let p = self.pending.remove(&ver).expect("entry present");
        let newer = self.committed.get(&p.key).is_some_and(|(cv, _)| *cv > ver);
        if !newer {
            self.committed.insert(p.key, (ver, p.value));
        }
        self.merge_seq(p.client.0, p.client_seq);
        for &a in &p.ackers {
            ctx.send(
                a,
                KvMsg::PutAck {
                    client_seq: p.client_seq,
                },
            );
        }
        if p.takeover {
            if !self.pending.values().any(|q| q.takeover) {
                self.ready = true;
            }
        } else {
            let lat = ctx.now().saturating_since(p.accepted_at).as_secs_f64();
            ctx.feedback(
                "kv.fanout",
                ContextKey::default(),
                p.fanout as u64,
                0.2 / (0.2 + lat),
            );
        }
    }

    fn on_put(&mut self, ctx: &mut Cx<'_, '_>, client: NodeId, key: u64, value: u64, seq: u32) {
        match self.role {
            Role::Leader if self.ready => {
                // Exactly-once: a resubmit of an in-flight write just joins
                // its ack list; a resubmit of a committed one is acked on
                // the spot (the value is already durable — possibly long
                // since superseded, which is fine: it took effect).
                if let Some(p) = self
                    .pending
                    .values_mut()
                    .find(|p| p.client == client && p.client_seq == seq)
                {
                    if !p.ackers.contains(&client) {
                        p.ackers.push(client);
                    }
                    return;
                }
                if self.last_seq.get(&client.0).copied().unwrap_or(0) >= seq {
                    ctx.send(client, KvMsg::PutAck { client_seq: seq });
                    return;
                }
                self.next_seq += 1;
                let ver = Version {
                    term: self.term,
                    seq: self.next_seq,
                };
                self.store.insert(
                    key,
                    Entry {
                        ver,
                        value,
                        client,
                        client_seq: seq,
                    },
                );
                // The exposed replication fan-out choice: how many
                // followers to hit synchronously. The minimum still
                // reaches a majority (with the leader); the repair sweep
                // covers the rest, so this trades latency vs load only.
                let peers = self.peers();
                let min_d = self.quorum() - 1;
                let max_d = peers.len();
                let options: Vec<OptionDesc> = (min_d..=max_d)
                    .map(|d| OptionDesc::with_features(d as u64, vec![d as f64]))
                    .collect();
                let i = ctx.choose("kv.fanout", ContextKey::default(), &options);
                let fanout = min_d + i;
                let now = ctx.now();
                self.pending.insert(
                    ver,
                    PendingWrite {
                        key,
                        value,
                        client,
                        client_seq: seq,
                        acks: vec![self.me],
                        ackers: vec![client],
                        since: now,
                        accepted_at: now,
                        takeover: false,
                        fanout,
                    },
                );
                let term = self.term;
                for j in 0..fanout {
                    let p = peers[(self.fanout_cursor + j) % peers.len()];
                    ctx.send(
                        p,
                        KvMsg::Replicate {
                            term,
                            ver,
                            key,
                            value,
                            client,
                            client_seq: seq,
                        },
                    );
                }
                self.fanout_cursor = (self.fanout_cursor + 1) % peers.len();
            }
            Role::Leader => {} // not ready yet; the client will resubmit
            Role::Follower => {
                if let Some(l) = self.leader {
                    ctx.send(
                        l,
                        KvMsg::Put {
                            client,
                            key,
                            value,
                            client_seq: seq,
                        },
                    );
                    ctx.send(client, KvMsg::Redirect { leader: l });
                }
            }
            Role::Recovering => {}
        }
    }

    fn on_get(&mut self, ctx: &mut Cx<'_, '_>, client: NodeId, key: u64, read_id: u32) {
        if self.unsafe_reads {
            // Injected-bug arm: whatever replica the client picked answers
            // from its local store, guard-free. Partitioned followers serve
            // stale values here — by design.
            let value = self.store.get(&key).map_or(INIT_VALUE, |e| e.value);
            ctx.send(client, KvMsg::GetAck { read_id, value });
            return;
        }
        match self.role {
            Role::Leader if self.ready => {
                self.next_guard += 1;
                let gid = self.next_guard;
                self.guards.insert(
                    gid,
                    GuardRead {
                        client,
                        key,
                        read_id,
                        acks: vec![self.me],
                        since: ctx.now(),
                    },
                );
                let term = self.term;
                for p in self.peers() {
                    ctx.send(
                        p,
                        KvMsg::Guard {
                            term,
                            guard_id: gid,
                        },
                    );
                }
            }
            Role::Leader => {}
            Role::Follower => {
                if let Some(l) = self.leader {
                    ctx.send(
                        l,
                        KvMsg::Get {
                            client,
                            key,
                            read_id,
                        },
                    );
                }
            }
            Role::Recovering => {}
        }
    }

    fn on_guard(&mut self, ctx: &mut Cx<'_, '_>, from: NodeId, term: u64, guard_id: u64) {
        if term < self.term {
            return; // the guarding leader is deposed; let its read starve
        }
        self.observe_newer_term(term);
        if self.role == Role::Recovering {
            self.leader = Some(from);
        } else {
            self.role = Role::Follower;
            self.leader = Some(from);
            self.last_heartbeat = ctx.now();
        }
        // A guard certifies term currency, and a restarted incarnation's
        // term knowledge is NOT sound: its predecessor may have granted a
        // newer term it has forgotten, and its ack here could complete a
        // deposed leader's guard after the new term committed writes. It
        // never acks guards again; a 5-group leader still finds its
        // quorum among the intact replicas.
        if !self.was_restarted {
            ctx.send(from, KvMsg::GuardAck { term, guard_id });
        }
    }

    fn on_guard_ack(&mut self, ctx: &mut Cx<'_, '_>, from: NodeId, term: u64, guard_id: u64) {
        if self.role != Role::Leader || term != self.term {
            return;
        }
        let quorum = self.quorum();
        let Some(g) = self.guards.get_mut(&guard_id) else {
            return;
        };
        if !g.acks.contains(&from) {
            g.acks.push(from);
        }
        if g.acks.len() < quorum {
            return;
        }
        let g = self.guards.remove(&guard_id).expect("guard present");
        let value = self.committed.get(&g.key).map_or(INIT_VALUE, |(_, v)| *v);
        ctx.send(
            g.client,
            KvMsg::GetAck {
                read_id: g.read_id,
                value,
            },
        );
    }

    fn on_sync_req(&mut self, ctx: &mut Cx<'_, '_>, from: NodeId) {
        if self.role == Role::Leader && self.ready {
            ctx.send(
                from,
                KvMsg::Sync {
                    term: self.term,
                    store: self.store_snapshot(),
                    last_seq: self.seq_snapshot(),
                },
            );
        }
    }

    fn on_sync(
        &mut self,
        ctx: &mut Cx<'_, '_>,
        from: NodeId,
        term: u64,
        store: StoreSnapshot,
        last_seq: SeqSnapshot,
    ) {
        if term < self.term {
            return;
        }
        self.observe_newer_term(term);
        if self.role == Role::Leader {
            return;
        }
        for (k, e) in store {
            self.merge_entry(k, e);
        }
        for (c, s) in last_seq {
            self.merge_seq(c, s);
        }
        self.role = Role::Follower;
        self.leader = Some(from);
        self.last_heartbeat = ctx.now();
    }

    /// Dispatches one protocol message.
    pub fn handle(&mut self, ctx: &mut Cx<'_, '_>, from: NodeId, msg: KvMsg) {
        match msg {
            KvMsg::Put {
                client,
                key,
                value,
                client_seq,
            } => self.on_put(ctx, client, key, value, client_seq),
            KvMsg::Get {
                client,
                key,
                read_id,
            } => self.on_get(ctx, client, key, read_id),
            KvMsg::Heartbeat { term } => self.on_heartbeat(ctx, from, term),
            KvMsg::Replicate {
                term,
                ver,
                key,
                value,
                client,
                client_seq,
            } => self.on_replicate(ctx, from, term, ver, key, value, client, client_seq),
            KvMsg::ReplicateAck { term, ver } => self.on_replicate_ack(ctx, from, term, ver),
            KvMsg::Guard { term, guard_id } => self.on_guard(ctx, from, term, guard_id),
            KvMsg::GuardAck { term, guard_id } => self.on_guard_ack(ctx, from, term, guard_id),
            KvMsg::VoteReq { term, candidate } => self.on_vote_req(ctx, term, candidate),
            KvMsg::VoteGrant {
                term,
                store,
                last_seq,
            } => self.on_vote_grant(ctx, from, term, store, last_seq),
            KvMsg::SyncReq => self.on_sync_req(ctx, from),
            KvMsg::Sync {
                term,
                store,
                last_seq,
            } => self.on_sync(ctx, from, term, store, last_seq),
            KvMsg::Batch {
                origin,
                bucket,
                attempt,
                count,
            } => self.on_batch(ctx, origin, bucket, attempt, count),
            KvMsg::PutAck { .. }
            | KvMsg::GetAck { .. }
            | KvMsg::Redirect { .. }
            | KvMsg::BatchAck { .. }
            | KvMsg::BatchDone { .. } => {}
        }
    }

    /// The service checkpoint.
    pub fn checkpoint(&self) -> KvCheckpoint {
        KvCheckpoint {
            term: self.term,
            role: match self.role {
                Role::Follower => 0,
                Role::Leader => 1,
                Role::Recovering => 2,
            },
            keys: self.store.len() as u64,
        }
    }
}
