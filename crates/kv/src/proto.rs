//! Wire protocol of the replicated KV service.
//!
//! Writes carry a `(term, seq)` [`Version`] assigned by the leader of the
//! term that accepted them; versions order totally (lexicographically), so
//! replicas can merge state by keeping the per-key maximum. Every message
//! between replicas carries the sender's notion of the current term — the
//! single monotone clock the whole protocol hangs off.

use cb_simnet::topology::NodeId;

/// A write's position in the global order: the accepting leader's term and
/// the per-term sequence number it assigned. Lexicographic comparison gives
/// the replication order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// Term of the leader that accepted the write.
    pub term: u64,
    /// Per-term sequence assigned by that leader (starting at 1).
    pub seq: u64,
}

/// One key's stored state: the winning version, its value, and the client
/// write it came from (kept for exactly-once resubmit handling).
#[derive(Clone, Debug)]
pub struct Entry {
    /// Version of the write that produced this value.
    pub ver: Version,
    /// The stored value.
    pub value: u64,
    /// The client that issued the write.
    pub client: NodeId,
    /// That client's sequence number for the write.
    pub client_seq: u32,
}

/// A full-store snapshot, shipped in vote grants and recovery syncs.
pub type StoreSnapshot = Vec<(u64, Entry)>;

/// Per-client highest-applied-write sequence numbers (`client id`, `seq`).
pub type SeqSnapshot = Vec<(u32, u32)>;

/// Every message of the KV deployment.
#[derive(Clone, Debug)]
pub enum KvMsg {
    /// Client write request (routed to the leader; followers forward).
    Put {
        /// The issuing client (kept in the message so forwards preserve
        /// the ack route).
        client: NodeId,
        /// Key to write.
        key: u64,
        /// Value to write.
        value: u64,
        /// Client-local sequence number — the exactly-once dedup handle.
        client_seq: u32,
    },
    /// Client read request, sent to the replica the client's
    /// `kv.read_replica` choice picked.
    Get {
        /// The issuing client.
        client: NodeId,
        /// Key to read.
        key: u64,
        /// Client-local id matching the response to the request.
        read_id: u32,
    },
    /// Leader → client: the write committed (majority-replicated).
    PutAck {
        /// Echo of the request's sequence number.
        client_seq: u32,
    },
    /// Replica → client: the read's result.
    GetAck {
        /// Echo of the request's read id.
        read_id: u32,
        /// The observed value.
        value: u64,
    },
    /// Follower → client: where the leader actually is.
    Redirect {
        /// The sender's current leader.
        leader: NodeId,
    },
    /// Leader → followers: liveness beacon for term `term`.
    Heartbeat {
        /// The leader's term.
        term: u64,
    },
    /// Leader → follower: apply this write.
    Replicate {
        /// The replicating leader's term (may exceed `ver.term` when a new
        /// leader re-replicates merged entries from older terms).
        term: u64,
        /// The write's version.
        ver: Version,
        /// Key written.
        key: u64,
        /// Value written.
        value: u64,
        /// Originating client (for dedup state).
        client: NodeId,
        /// Originating client sequence.
        client_seq: u32,
    },
    /// Follower → leader: the write is applied here.
    ReplicateAck {
        /// Echo of the replicating term.
        term: u64,
        /// Echo of the write's version.
        ver: Version,
    },
    /// Leader → followers: "is term `term` still current?" — the
    /// linearizable-read fence.
    Guard {
        /// The leader's term.
        term: u64,
        /// Correlates acks to the pending read.
        guard_id: u64,
    },
    /// Follower → leader: term `term` is still the newest this follower
    /// has seen.
    GuardAck {
        /// Echo of the guarded term.
        term: u64,
        /// Echo of the guard id.
        guard_id: u64,
    },
    /// Election: the sender asks every replica to vote `candidate` into
    /// leadership of `term`.
    VoteReq {
        /// The proposed (strictly newer) term.
        term: u64,
        /// The replica the sender's `kv.leader` choice nominated.
        candidate: NodeId,
    },
    /// A replica's vote, sent to the candidate. Carries the voter's full
    /// store so the winner can merge a majority's worth of state — any
    /// committed write lives in every majority.
    VoteGrant {
        /// The granted term.
        term: u64,
        /// The voter's store.
        store: StoreSnapshot,
        /// The voter's per-client dedup state.
        last_seq: SeqSnapshot,
    },
    /// Open-loop workload generator → replica: an aggregate bucket of
    /// `count` user requests arriving in one window/region (cb-workload's
    /// millions-of-users-for-thousands-of-events representation).
    Batch {
        /// The generator node to notify (admission and service outcomes).
        origin: NodeId,
        /// Bucket identity: `window << 8 | region`.
        bucket: u64,
        /// Send attempt, starting at 1 (retries increment).
        attempt: u32,
        /// Aggregated request count in this bucket.
        count: u64,
    },
    /// Replica → generator: admission outcome for a batch. `shed > 0`
    /// means the `kv.admission` choice trimmed or rejected the bucket;
    /// the generator may retry the shed portion within its budget.
    BatchAck {
        /// Echo of the bucket id.
        bucket: u64,
        /// Echo of the attempt.
        attempt: u32,
        /// Requests enqueued for service.
        admitted: u64,
        /// Requests shed at admission.
        shed: u64,
    },
    /// Replica → generator: terminal service outcome for the admitted part
    /// of a bucket. `expired` requests waited past the deadline before
    /// reaching the server — wasted capacity their users will retry.
    BatchDone {
        /// Echo of the bucket id.
        bucket: u64,
        /// Echo of the attempt.
        attempt: u32,
        /// Requests served within the deadline (goodput).
        served: u64,
        /// Requests served too late to count.
        expired: u64,
    },
    /// A restarted (amnesiac) replica asking the leader for a full sync.
    SyncReq,
    /// Leader → recovering replica: full state transfer.
    Sync {
        /// The leader's term.
        term: u64,
        /// The leader's store.
        store: StoreSnapshot,
        /// The leader's per-client dedup state.
        last_seq: SeqSnapshot,
    },
}
