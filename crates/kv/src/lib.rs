//! # cb-kv — a replicated KV store on the explicit-choice runtime
//!
//! The paper's running examples are consensus and replication; this crate
//! is the replication half: a term-based leader/follower KV service whose
//! operational knobs are **exposed choices** the runtime resolves:
//!
//! * `kv.leader` — which replica an election nominates;
//! * `kv.fanout` — how many followers a write is synchronously
//!   replicated to (quorum-minimum through everyone);
//! * `kv.read_replica` — which replica a client sends each read to.
//!
//! Correctness is judged from the outside: every client session records
//! its operations as a real-time history, and the campaign's
//! `kv.linearizable` oracle runs the WGL checker from `cb-harness` over
//! it. The `unsafe_reads` arm removes the leader's read guard so the
//! chosen read replica answers from its local store — the classic
//! stale-read bug, planted so campaigns have a real violation to find and
//! `trace blame` has a real decision (`kv.read_replica`) to pin it on.

#![warn(missing_docs)]

pub mod campaign;
pub mod loadgen;
pub mod node;
pub mod proto;
pub mod replica;
pub mod session;

pub use campaign::KvCampaign;
pub use loadgen::LoadGen;
pub use node::KvNode;
pub use proto::{Entry, KvMsg, Version};
pub use replica::{KvCheckpoint, OverloadConfig, Replica, Role};
pub use session::Session;
