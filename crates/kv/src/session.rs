//! The KV client session: closed-loop workload + history recorder.
//!
//! Each session runs one operation at a time — invoke, wait for the ack,
//! think, invoke the next — and records every operation as a
//! [`cb_harness::linearizability::Op`] with its real-time invoke/respond
//! window. The concatenated session histories are exactly what the
//! campaign's `kv.linearizable` oracle feeds to the WGL checker.
//!
//! The session owns the scenario's third exposed choice:
//! `kv.read_replica` — which replica a read is sent to. Under guarded
//! reads any target works (followers forward to the leader), so the choice
//! only shapes latency; under the `--unsafe-reads` arm the chosen replica
//! answers from its local store, and a partitioned pick turns directly
//! into a stale read the oracle flags — which is what makes the choice's
//! decision span the root cause `trace blame` should find.

use crate::proto::KvMsg;
use crate::replica::KvCheckpoint;
use cb_core::choice::{ContextKey, OptionDesc};
use cb_core::runtime::ServiceCtx;
use cb_harness::linearizability::{Op, OpKind};
use cb_simnet::time::{SimDuration, SimTime};
use cb_simnet::topology::NodeId;

/// Next-operation timer tag.
pub const OP_TIMER: u64 = 10;

/// Retry-sweep timer tag.
pub const SWEEP_TIMER: u64 = 11;

/// Think time between an ack and the next operation.
const THINK: SimDuration = SimDuration::from_millis(500);

/// Operations unacknowledged for this long are resubmitted.
const RESUBMIT_AFTER: SimDuration = SimDuration::from_secs(2);

type Cx<'a, 'b> = ServiceCtx<'a, 'b, KvMsg, KvCheckpoint>;

/// What the session currently has in flight.
enum InFlight {
    /// Nothing; the next op fires on [`OP_TIMER`].
    Idle,
    /// A write: key, value, sequence, submit time, routing attempt.
    Put {
        key: u64,
        value: u64,
        seq: u32,
        at: SimTime,
        attempt: u32,
    },
    /// A read: key, read id, submit time, replica picked.
    Get {
        key: u64,
        read_id: u32,
        at: SimTime,
        replica: NodeId,
    },
}

/// One closed-loop client session.
pub struct Session {
    me: NodeId,
    /// The replica group, in index order.
    pub group: Vec<NodeId>,
    /// Keys are drawn from `0..keys`.
    pub keys: u64,
    /// Operations to run before going quiet.
    pub target: u32,
    /// Where this session currently believes the leader is.
    leader_hint: usize,
    seq: u32,
    next_read: u32,
    inflight: InFlight,
    /// Index into `history` of the in-flight op (respond backfilled there).
    open_idx: usize,
    /// Every operation this session invoked, in invoke order.
    pub history: Vec<Op>,
    /// Operations resubmitted after a timeout.
    pub resubmits: u64,
}

impl Session {
    /// Creates a session running `target` ops over `keys` keys.
    pub fn new(me: NodeId, group: Vec<NodeId>, keys: u64, target: u32) -> Self {
        Session {
            me,
            group,
            keys,
            target,
            leader_hint: 0,
            seq: 0,
            next_read: 0,
            inflight: InFlight::Idle,
            open_idx: 0,
            history: Vec::new(),
            resubmits: 0,
        }
    }

    /// Completed operations (acked, so their history windows are closed).
    pub fn completed(&self) -> usize {
        self.history
            .iter()
            .filter(|op| op.respond_ns.is_some())
            .count()
    }

    /// True once every targeted op has been invoked and acked.
    pub fn done(&self) -> bool {
        self.seq + self.next_read >= self.target && matches!(self.inflight, InFlight::Idle)
    }

    /// Schedules the opening timers.
    pub fn on_start(&mut self, ctx: &mut Cx<'_, '_>) {
        // Stagger session starts so invocations interleave across clients.
        let first = SimDuration::from_millis(200 + ctx.rng().gen_below(800));
        ctx.set_timer(first, OP_TIMER);
        ctx.set_timer(SimDuration::from_secs(1), SWEEP_TIMER);
    }

    fn pick_read_replica(&mut self, ctx: &mut Cx<'_, '_>) -> NodeId {
        let now = ctx.now();
        let options: Vec<OptionDesc> = self
            .group
            .iter()
            .map(|&r| {
                let latency_ms = ctx
                    .net_model()
                    .predicted_latency(r, now)
                    .map_or(40.0, |(l, _)| l.as_millis_f64());
                OptionDesc::with_features(r.0 as u64, vec![latency_ms])
            })
            .collect();
        let i = ctx.choose("kv.read_replica", ContextKey::default(), &options);
        self.group[i]
    }

    /// Invokes the next operation, if idle and under budget.
    pub fn next_op(&mut self, ctx: &mut Cx<'_, '_>) {
        if !matches!(self.inflight, InFlight::Idle) || self.seq + self.next_read >= self.target {
            return;
        }
        let key = ctx.rng().gen_below(self.keys);
        let now = ctx.now();
        if ctx.rng().gen_below(2) == 0 {
            // A write of a globally unique, never-zero value: the session id
            // in the high half and the sequence in the low half, so any
            // read's result names exactly one write (or the initial 0).
            self.seq += 1;
            let seq = self.seq;
            let value = ((self.me.0 as u64) << 32) | seq as u64;
            self.open_idx = self.history.len();
            self.history.push(Op::pending_write(
                self.me.0 as u64,
                key,
                value,
                now.as_nanos(),
            ));
            self.inflight = InFlight::Put {
                key,
                value,
                seq,
                at: now,
                attempt: 0,
            };
            let target = self.group[self.leader_hint];
            ctx.send(
                target,
                KvMsg::Put {
                    client: self.me,
                    key,
                    value,
                    client_seq: seq,
                },
            );
        } else {
            self.next_read += 1;
            let read_id = self.next_read;
            let replica = self.pick_read_replica(ctx);
            self.open_idx = self.history.len();
            self.history
                .push(Op::pending_read(self.me.0 as u64, key, now.as_nanos()));
            self.inflight = InFlight::Get {
                key,
                read_id,
                at: now,
                replica,
            };
            ctx.send(
                replica,
                KvMsg::Get {
                    client: self.me,
                    key,
                    read_id,
                },
            );
        }
    }

    /// Handles a write acknowledgement.
    pub fn on_put_ack(&mut self, ctx: &mut Cx<'_, '_>, client_seq: u32) {
        if let InFlight::Put { seq, .. } = self.inflight {
            if seq == client_seq {
                self.history[self.open_idx].respond_ns = Some(ctx.now().as_nanos());
                self.inflight = InFlight::Idle;
                ctx.set_timer(THINK, OP_TIMER);
            }
        }
    }

    /// Handles a read result.
    pub fn on_get_ack(&mut self, ctx: &mut Cx<'_, '_>, read_id: u32, value: u64) {
        if let InFlight::Get {
            read_id: want,
            at,
            replica,
            ..
        } = self.inflight
        {
            if want == read_id {
                let op = &mut self.history[self.open_idx];
                op.kind = OpKind::Read(value);
                op.respond_ns = Some(ctx.now().as_nanos());
                let lat = ctx.now().saturating_since(at).as_secs_f64();
                ctx.feedback(
                    "kv.read_replica",
                    ContextKey::default(),
                    replica.0 as u64,
                    0.2 / (0.2 + lat),
                );
                self.inflight = InFlight::Idle;
                ctx.set_timer(THINK, OP_TIMER);
            }
        }
    }

    /// Follows a leader redirect.
    pub fn on_redirect(&mut self, leader: NodeId) {
        if let Some(i) = self.group.iter().position(|&r| r == leader) {
            self.leader_hint = i;
        }
    }

    /// Resubmits the in-flight op if it has been outstanding too long.
    /// Writes rotate the leader hint; reads make a *fresh* replica choice,
    /// opening a new decision span for the retry.
    pub fn sweep(&mut self, ctx: &mut Cx<'_, '_>) {
        let now = ctx.now();
        enum Retry {
            Put {
                key: u64,
                value: u64,
                seq: u32,
                attempt: u32,
            },
            Get {
                key: u64,
                read_id: u32,
            },
        }
        let retry = match &mut self.inflight {
            InFlight::Idle => None,
            InFlight::Put {
                key,
                value,
                seq,
                at,
                attempt,
            } => {
                if now.saturating_since(*at) > RESUBMIT_AFTER {
                    *at = now;
                    *attempt += 1;
                    Some(Retry::Put {
                        key: *key,
                        value: *value,
                        seq: *seq,
                        attempt: *attempt,
                    })
                } else {
                    None
                }
            }
            InFlight::Get {
                key, read_id, at, ..
            } => {
                if now.saturating_since(*at) > RESUBMIT_AFTER {
                    *at = now;
                    Some(Retry::Get {
                        key: *key,
                        read_id: *read_id,
                    })
                } else {
                    None
                }
            }
        };
        match retry {
            None => {}
            Some(Retry::Put {
                key,
                value,
                seq,
                attempt,
            }) => {
                self.resubmits += 1;
                self.leader_hint = (self.leader_hint + attempt as usize) % self.group.len();
                let target = self.group[self.leader_hint];
                ctx.send(
                    target,
                    KvMsg::Put {
                        client: self.me,
                        key,
                        value,
                        client_seq: seq,
                    },
                );
            }
            Some(Retry::Get { key, read_id }) => {
                self.resubmits += 1;
                let replica = self.pick_read_replica(ctx);
                if let InFlight::Get { replica: r, .. } = &mut self.inflight {
                    *r = replica;
                }
                ctx.send(
                    replica,
                    KvMsg::Get {
                        client: self.me,
                        key,
                        read_id,
                    },
                );
            }
        }
        ctx.set_timer(SimDuration::from_secs(1), SWEEP_TIMER);
    }
}
