//! The open-loop workload generator node.
//!
//! One [`LoadGen`] drives the whole simulated user population: each
//! window it asks the [`ArrivalEngine`] how many requests arrived, splits
//! them into one aggregate [`KvMsg::Batch`] per region, and rotates the
//! region→replica mapping so regional skew spreads over the group. Open
//! loop means arrivals never wait for service: the next window fires on
//! sim time regardless of how far behind the fleet is — exactly the
//! property that makes overload (and metastable collapse) reachable.
//!
//! Shed and expired work comes back as [`KvMsg::BatchAck`] /
//! [`KvMsg::BatchDone`]; the generator retries those buckets with
//! exponential backoff + deterministic jitter, each bucket capped at the
//! profile's retry budget (unbounded when the budget is `None` — the
//! retry-storm arm).

use crate::proto::KvMsg;
use crate::replica::KvCheckpoint;
use cb_core::runtime::ServiceCtx;
use cb_simnet::time::SimTime;
use cb_simnet::topology::NodeId;
use cb_telemetry::keys;
use cb_workload::{ArrivalEngine, WorkloadProfile};

/// Window-emission timer tag.
pub const GEN_WINDOW: u64 = 20;
/// Retry-sweep timer tag.
pub const GEN_RETRY: u64 = 21;

type Cx<'a, 'b> = ServiceCtx<'a, 'b, KvMsg, KvCheckpoint>;

/// A shed/expired bucket scheduled for another attempt.
struct PendingRetry {
    due: SimTime,
    bucket: u64,
    attempt: u32,
    count: u64,
}

/// The aggregate client-population node.
pub struct LoadGen {
    me: NodeId,
    /// The replica group the batches target.
    pub group: Vec<NodeId>,
    engine: ArrivalEngine,
    /// Windows to emit before the offered load ends.
    windows: u64,
    emitted: u64,
    pending: Vec<PendingRetry>,
    /// Total user requests offered (report color).
    pub offered: u64,
    /// Total per-request send attempts, retries included.
    pub attempts: u64,
    /// Requests that exhausted their retry budget.
    pub failed: u64,
    /// Requests confirmed served in time.
    pub served: u64,
}

impl LoadGen {
    /// A generator emitting `windows` windows of `profile` traffic at the
    /// replica `group`.
    pub fn new(
        me: NodeId,
        group: Vec<NodeId>,
        profile: WorkloadProfile,
        seed: u64,
        windows: u64,
    ) -> Self {
        LoadGen {
            me,
            group,
            engine: ArrivalEngine::new(profile, seed),
            windows,
            emitted: 0,
            pending: Vec::new(),
            offered: 0,
            attempts: 0,
            failed: 0,
            served: 0,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        self.engine.profile()
    }

    /// Startup: emit window 0 immediately, then run on the window clock;
    /// the retry sweep runs on the profile's drain interval.
    pub fn on_start(&mut self, ctx: &mut Cx<'_, '_>) {
        self.emit_window(ctx);
        let p = self.engine.profile();
        let (window, sweep) = (p.window, p.drain_every);
        if self.emitted < self.windows {
            ctx.set_timer(window, GEN_WINDOW);
        }
        ctx.set_timer(sweep, GEN_RETRY);
    }

    /// The window timer: one engine step, one batch per loaded region.
    pub fn on_window(&mut self, ctx: &mut Cx<'_, '_>) {
        self.emit_window(ctx);
        if self.emitted < self.windows {
            let window = self.engine.profile().window;
            ctx.set_timer(window, GEN_WINDOW);
        }
    }

    fn emit_window(&mut self, ctx: &mut Cx<'_, '_>) {
        if self.emitted >= self.windows {
            return;
        }
        let w = self.engine.window(self.emitted);
        self.emitted += 1;
        self.offered += w.total;
        ctx.count(keys::WORKLOAD_OFFERED, w.total);
        for (region, &count) in w.per_region.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let bucket = (w.index << 8) | region as u64;
            self.send_batch(ctx, bucket, 1, count);
        }
    }

    fn send_batch(&mut self, ctx: &mut Cx<'_, '_>, bucket: u64, attempt: u32, count: u64) {
        // Rotate region → replica per window so the Zipf-heavy region does
        // not pin one replica forever; retries rotate further by attempt.
        let region = bucket & 0xff;
        let window = bucket >> 8;
        let idx = (region + window + attempt as u64 - 1) % self.group.len() as u64;
        let target = self.group[idx as usize];
        self.attempts += count;
        ctx.count(keys::WORKLOAD_ATTEMPTS, count);
        ctx.send(
            target,
            KvMsg::Batch {
                origin: self.me,
                bucket,
                attempt,
                count,
            },
        );
    }

    /// Admission outcome: retry the shed portion within budget.
    pub fn on_batch_ack(&mut self, ctx: &mut Cx<'_, '_>, bucket: u64, attempt: u32, shed: u64) {
        if shed > 0 {
            self.maybe_retry(ctx, bucket, attempt, shed);
        }
    }

    /// Service outcome: count goodput, retry the expired portion. Expired
    /// work is the retry-storm fuel — those users timed out and press
    /// reload.
    pub fn on_batch_done(
        &mut self,
        ctx: &mut Cx<'_, '_>,
        bucket: u64,
        attempt: u32,
        served: u64,
        expired: u64,
    ) {
        self.served += served;
        if expired > 0 {
            self.maybe_retry(ctx, bucket, attempt, expired);
        }
    }

    fn maybe_retry(&mut self, ctx: &mut Cx<'_, '_>, bucket: u64, attempt: u32, count: u64) {
        let p = self.engine.profile();
        if let Some(budget) = p.retry_budget {
            if attempt >= budget {
                self.failed += count;
                ctx.count(keys::WORKLOAD_FAILED, count);
                return;
            }
        }
        ctx.count(keys::WORKLOAD_RETRIES, count);
        // Exponential backoff, capped at 16x, plus deterministic jitter of
        // up to half the base — desynchronizes retry waves.
        let base = p.retry_base;
        let backoff = base.mul_f64((1u64 << (attempt - 1).min(4)) as f64);
        let jitter_ns = ctx.rng().gen_below(base.as_nanos().max(2) / 2);
        let due = ctx
            .now()
            .saturating_add(backoff)
            .saturating_add(cb_simnet::time::SimDuration::from_nanos(jitter_ns));
        self.pending.push(PendingRetry {
            due,
            bucket,
            attempt: attempt + 1,
            count,
        });
    }

    /// The retry sweep: send every due retry, keep the rest pending.
    pub fn on_retry_sweep(&mut self, ctx: &mut Cx<'_, '_>) {
        let now = ctx.now();
        let due: Vec<PendingRetry> = {
            let mut kept = Vec::new();
            let mut due = Vec::new();
            for r in self.pending.drain(..) {
                if r.due <= now {
                    due.push(r);
                } else {
                    kept.push(r);
                }
            }
            self.pending = kept;
            due
        };
        for r in due {
            self.send_batch(ctx, r.bucket, r.attempt, r.count);
        }
        let sweep = self.engine.profile().drain_every;
        ctx.set_timer(sweep, GEN_RETRY);
    }
}
