//! Open-loop aggregate client load (ROADMAP item 2).
//!
//! The engine models *populations*, not individual clients: each fixed
//! window it computes how many user requests arrive, shaped by a diurnal
//! curve, a flash crowd, a heavy-tailed (bounded-Pareto) per-window burst,
//! and correlated client churn, then splits the total across regions by a
//! Zipf skew. One million simulated users therefore cost a handful of sim
//! events per window — the *counts* travel in aggregate messages — instead
//! of millions of per-request events. Every stream is a pure function of
//! `(profile, seed, window index)`: seed-deterministic and trivially
//! worker-count-invariant, like all prior machinery.
//!
//! The profile also carries the robustness knobs the kv service layer
//! reads (admission control, bounded retries, service rate, deadline) and
//! the gates the harness oracles check (goodput floor, recovery window),
//! so a campaign arm is fully described by one profile name.

use cb_simnet::rng::SimRng;
use cb_simnet::time::{SimDuration, SimTime};

/// A named open-loop traffic profile plus the overload-survival knobs and
/// oracle gates that go with it.
#[derive(Clone, Debug)]
pub struct WorkloadProfile {
    /// Profile name (`campaign --workload <name>`).
    pub name: &'static str,
    /// Simulated user population.
    pub users: u64,
    /// Mean request rate per user, Hz.
    pub per_user_hz: f64,
    /// Aggregation window: one batch per region per window.
    pub window: SimDuration,
    /// Number of client regions (Zipf-skewed shares).
    pub regions: u32,
    /// Zipf exponent for the regional split (0 = uniform).
    pub zipf_s: f64,
    /// Diurnal period (sinusoidal day/night curve).
    pub diurnal_period: SimDuration,
    /// Diurnal trough depth in `[0, 1)`: load dips to `1 - depth`.
    pub diurnal_depth: f64,
    /// Flash crowd window start (ignored when `flash_mult <= 1`).
    pub flash_start: SimTime,
    /// Flash crowd window end.
    pub flash_end: SimTime,
    /// Flash crowd arrival multiplier (1.0 = no flash).
    pub flash_mult: f64,
    /// Bounded-Pareto burst shape (heavier tail as it approaches 1).
    pub pareto_alpha: f64,
    /// Burst cap, in multiples of the mean.
    pub pareto_cap: f64,
    /// Correlated-churn depth in `[0, 1)`: the online fraction wanders in
    /// `[1 - depth, 1]` via an AR(1) walk.
    pub churn_depth: f64,
    /// Admission control + load shedding on (the surviving arm) or off
    /// (the metastable arm).
    pub admission: bool,
    /// Max send attempts per bucket, *including* the first (None =
    /// unbounded — the retry-storm arm).
    pub retry_budget: Option<u32>,
    /// Retry backoff base (doubles per attempt, jittered).
    pub retry_base: SimDuration,
    /// Per-replica service capacity, ops per drain interval.
    pub service_rate: u64,
    /// Work-queue drain interval.
    pub drain_every: SimDuration,
    /// Max queue wait: a bucket served later than this counts as expired
    /// (wasted capacity) and is reported back for retry.
    pub deadline: SimDuration,
    /// Admission limit in drain-interval units of backlog (queue depth /
    /// `service_rate`); admitted work is trimmed or shed above this.
    pub admit_limit: u64,
    /// Goodput-floor oracle gate: served must be >= floor * offered.
    pub goodput_floor: f64,
    /// Metastability oracle gate: the fleet must be back to Healthy once
    /// this much time has passed after `flash_end`.
    pub recovery_window: SimDuration,
}

impl WorkloadProfile {
    /// The steady profile: 2k users at 0.5 Hz (1k ops/s fleet-wide)
    /// against ~1.5k ops/s of service capacity. Admission on, retries
    /// bounded; the governor should never leave Healthy for long.
    pub fn steady() -> Self {
        WorkloadProfile {
            name: "steady",
            users: 2_000,
            per_user_hz: 0.5,
            window: SimDuration::from_secs(1),
            regions: 4,
            zipf_s: 1.0,
            diurnal_period: SimDuration::from_secs(60),
            diurnal_depth: 0.3,
            flash_start: SimTime::ZERO,
            flash_end: SimTime::ZERO,
            flash_mult: 1.0,
            pareto_alpha: 1.5,
            pareto_cap: 8.0,
            churn_depth: 0.1,
            admission: true,
            retry_budget: Some(3),
            retry_base: SimDuration::from_millis(500),
            service_rate: 75,
            drain_every: SimDuration::from_millis(250),
            deadline: SimDuration::from_millis(2_500),
            admit_limit: 8,
            goodput_floor: 0.5,
            recovery_window: SimDuration::from_secs(20),
        }
    }

    /// The flash-crowd profile: steady load with a 6x arrival spike in
    /// `[40 s, 70 s)`. Admission sheds the excess, the governor steps
    /// down on the load signal and recovers after the spike.
    pub fn flash() -> Self {
        WorkloadProfile {
            name: "flash",
            flash_start: SimTime::from_secs(40),
            flash_end: SimTime::from_secs(70),
            flash_mult: 6.0,
            goodput_floor: 0.33,
            recovery_window: SimDuration::from_secs(30),
            ..Self::steady()
        }
    }

    /// The deliberately unprotected arm: the same flash crowd with
    /// admission control *off* and retries *unbounded*. Expired work is
    /// retried forever, so the retry flux outlives the flash — the
    /// metastable failure the oracle exists to detect.
    pub fn flash_off() -> Self {
        WorkloadProfile {
            name: "flash-off",
            admission: false,
            retry_budget: None,
            ..Self::flash()
        }
    }

    /// One million simulated users at 0.02 Hz (20k ops/s fleet-wide)
    /// against ~25k ops/s of capacity: proof that population scale costs
    /// windows, not events.
    pub fn million() -> Self {
        WorkloadProfile {
            name: "million",
            users: 1_000_000,
            per_user_hz: 0.02,
            service_rate: 1_250,
            ..Self::steady()
        }
    }

    /// Looks a profile up by its campaign-facing name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "steady" => Some(Self::steady()),
            "flash" => Some(Self::flash()),
            "flash-off" => Some(Self::flash_off()),
            "million" => Some(Self::million()),
            _ => None,
        }
    }

    /// Every profile name, for usage strings.
    pub fn names() -> &'static [&'static str] {
        &["steady", "flash", "flash-off", "million"]
    }

    /// Mean offered ops per window before modulation.
    pub fn base_per_window(&self) -> f64 {
        self.users as f64 * self.per_user_hz * self.window.as_secs_f64()
    }

    /// Whether sim time `t` falls inside the flash crowd.
    pub fn in_flash(&self, t: SimTime) -> bool {
        self.flash_mult > 1.0 && t >= self.flash_start && t < self.flash_end
    }

    /// A small op-count multiplier for scenarios driven through their
    /// existing entry points (gossip / dissemination / randtree / paxos):
    /// heavier profiles push more protocol-level work.
    pub fn scale_hint(&self) -> u32 {
        let m = if self.flash_mult > 1.0 { 2 } else { 1 };
        if self.users >= 100_000 {
            m * 3
        } else {
            m
        }
    }
}

/// One window's worth of aggregate arrivals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowLoad {
    /// Window index (window `k` covers `[k*window, (k+1)*window)`).
    pub index: u64,
    /// Total arrivals this window.
    pub total: u64,
    /// Zipf-skewed per-region split; sums exactly to `total`.
    pub per_region: Vec<u64>,
    /// Whether this window falls inside the flash crowd.
    pub flash: bool,
}

/// The deterministic arrival stream: call [`ArrivalEngine::window`] with
/// consecutive indices. State (the churn walk, the burst draws) advances
/// with each call, so the stream is a pure function of `(profile, seed)`.
pub struct ArrivalEngine {
    profile: WorkloadProfile,
    rng: SimRng,
    /// AR(1) churn walk in [-1, 1].
    churn_walk: f64,
    /// Normalized Zipf region weights.
    weights: Vec<f64>,
}

impl ArrivalEngine {
    /// Builds the stream for `profile` from a campaign seed.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        let mut weights: Vec<f64> = (0..profile.regions.max(1))
            .map(|r| 1.0 / ((r + 1) as f64).powf(profile.zipf_s))
            .collect();
        let norm: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= norm;
        }
        ArrivalEngine {
            profile,
            rng: SimRng::seed_from(seed ^ 0x0007_70ad_10ad),
            churn_walk: 0.0,
            weights,
        }
    }

    /// The profile this engine drives.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Computes window `index`'s aggregate arrivals and advances the
    /// stream state.
    pub fn window(&mut self, index: u64) -> WindowLoad {
        let p = &self.profile;
        let window_s = p.window.as_secs_f64();
        // Mid-window time drives the slow curves.
        let t_s = (index as f64 + 0.5) * window_s;
        let t = SimTime::from_nanos((t_s * 1e9) as u64);
        // Diurnal curve: dips to (1 - depth) at the trough.
        let phase = 2.0 * std::f64::consts::PI * t_s / p.diurnal_period.as_secs_f64().max(1e-9);
        let diurnal = 1.0 - p.diurnal_depth * (0.5 - 0.5 * phase.sin());
        // Flash crowd: a step multiplier over [flash_start, flash_end).
        let flash = p.in_flash(t);
        let flash_mult = if flash { p.flash_mult } else { 1.0 };
        // Correlated churn: AR(1) walk on the online fraction.
        self.churn_walk =
            (0.85 * self.churn_walk + 0.15 * self.rng.gen_normal(0.0, 1.0)).clamp(-1.0, 1.0);
        let online = 1.0 - p.churn_depth * (0.5 + 0.5 * self.churn_walk);
        // Heavy-tailed burst: bounded Pareto, normalized by the unbounded
        // mean alpha/(alpha-1) so the long-run average stays ~1.
        let u = self.rng.gen_f64().min(1.0 - 1e-12);
        let raw = (1.0 - u).powf(-1.0 / p.pareto_alpha);
        let mean = p.pareto_alpha / (p.pareto_alpha - 1.0);
        let burst = raw.min(p.pareto_cap * mean) / mean;
        let total = (p.base_per_window() * diurnal * flash_mult * online * burst).round() as u64;
        // Largest-share-takes-remainder split: region totals sum exactly.
        let mut per_region: Vec<u64> = self
            .weights
            .iter()
            .map(|w| (w * total as f64).floor() as u64)
            .collect();
        let assigned: u64 = per_region.iter().sum();
        per_region[0] += total - assigned;
        WindowLoad {
            index,
            total,
            per_region,
            flash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_resolve_by_name_and_list_them_all() {
        for name in WorkloadProfile::names() {
            let p = WorkloadProfile::by_name(name).expect("listed profile resolves");
            assert_eq!(p.name, *name);
        }
        assert!(WorkloadProfile::by_name("nope").is_none());
    }

    #[test]
    fn stream_is_seed_deterministic_and_seeds_differ() {
        let mut a = ArrivalEngine::new(WorkloadProfile::flash(), 42);
        let mut b = ArrivalEngine::new(WorkloadProfile::flash(), 42);
        let mut c = ArrivalEngine::new(WorkloadProfile::flash(), 43);
        let wa: Vec<WindowLoad> = (0..200).map(|i| a.window(i)).collect();
        let wb: Vec<WindowLoad> = (0..200).map(|i| b.window(i)).collect();
        let wc: Vec<WindowLoad> = (0..200).map(|i| c.window(i)).collect();
        assert_eq!(wa, wb, "same seed, same stream");
        assert_ne!(wa, wc, "different seed, different bursts");
    }

    #[test]
    fn regional_split_conserves_the_total_and_skews_zipf() {
        let mut e = ArrivalEngine::new(WorkloadProfile::steady(), 7);
        for i in 0..100 {
            let w = e.window(i);
            assert_eq!(w.per_region.iter().sum::<u64>(), w.total);
            // Zipf: region 0 carries the largest share.
            assert!(w.per_region[0] >= w.per_region[w.per_region.len() - 1]);
        }
    }

    #[test]
    fn flash_windows_carry_the_multiplier() {
        let p = WorkloadProfile::flash();
        let mut e = ArrivalEngine::new(p.clone(), 11);
        let mut pre = 0u64;
        let mut during = 0u64;
        let (mut n_pre, mut n_during) = (0u64, 0u64);
        for i in 0..120 {
            let w = e.window(i);
            let t = SimTime::from_nanos(((i as f64 + 0.5) * 1e9) as u64);
            if p.in_flash(t) {
                assert!(w.flash);
                during += w.total;
                n_during += 1;
            } else {
                assert!(!w.flash);
                pre += w.total;
                n_pre += 1;
            }
        }
        assert!(n_during >= 25, "flash covers [40s,70s)");
        // 6x multiplier must dominate diurnal/churn/burst noise on average.
        let mean_pre = pre as f64 / n_pre as f64;
        let mean_during = during as f64 / n_during as f64;
        assert!(
            mean_during > 3.0 * mean_pre,
            "flash {mean_during:.0} vs steady {mean_pre:.0}"
        );
    }

    #[test]
    fn million_users_cost_windows_not_events() {
        // 180 windows of the million-user profile offer multi-million ops:
        // the aggregate representation is what keeps the event count in
        // the thousands regime downstream.
        let mut e = ArrivalEngine::new(WorkloadProfile::million(), 3);
        let offered: u64 = (0..180).map(|i| e.window(i).total).sum();
        assert!(offered >= 1_000_000, "offered {offered}");
        // The whole stream was computed in 180 engine steps; each step
        // becomes O(regions) sim messages, not O(users).
        assert!(e.profile().regions <= 8);
    }
}
