//! Property tests for fault-plan spec round-tripping and shrink
//! compatibility, over arbitrary plans drawn from *every* fault kind —
//! including the gray-failure `stall` and the `delayspike` latency storm.
//!
//! Invariants:
//!
//! 1. **Spec round-trip.** `to_spec` → `from_spec` reproduces the plan
//!    exactly, and the printed spec is a fixed point.
//! 2. **Shrink compatibility.** Dropping any single fault with `without`
//!    yields a plan one fault smaller that is a subset of the original and
//!    still round-trips; the original is not a subset of the smaller plan.
//! 3. **Boundaries.** Fault window boundaries come out sorted and deduped
//!    for arbitrary plans.

use cb_harness::plan::FaultPlan;
use proptest::prelude::*;

/// Builds one arbitrary fault of any kind through the public builder API,
/// deterministically from `rng`. Loss percentages are whole percent so the
/// printed spec (`loss:<pct>@...`) is exact; windows are well-ordered.
fn push_fault(plan: FaultPlan, rng: &mut TestRng) -> FaultPlan {
    let node = rng.below(16) as u32;
    let from = rng.below(5_000);
    let until = 5_000 + rng.below(5_000);
    match rng.below(7) {
        0 => plan.crash(node, from),
        1 => plan.restart(node, from),
        2 => {
            let a: Vec<u32> = (0..1 + rng.below(2)).map(|_| rng.below(8) as u32).collect();
            let b: Vec<u32> = (0..1 + rng.below(2))
                .map(|_| 8 + rng.below(8) as u32)
                .collect();
            let heal = if rng.below(2) == 0 { Some(until) } else { None };
            plan.partition(&a, &b, from, heal)
        }
        3 => plan.loss(rng.below(96) as f64 / 100.0, from, until),
        4 => {
            let nodes: Vec<u32> = (0..1 + rng.below(3))
                .map(|_| rng.below(16) as u32)
                .collect();
            plan.churn(
                &nodes,
                from.min(1_999),
                2_000 + rng.below(6_000),
                100 + rng.below(1_900),
                100 + rng.below(900),
            )
        }
        5 => plan.stall(node, from, until),
        _ => plan.delayspike(1 + rng.below(1_999), from, until),
    }
}

fn gen_plan(seed: u64, n_faults: usize) -> FaultPlan {
    let mut rng = TestRng::seed_from(seed);
    (0..n_faults).fold(FaultPlan::none(), |p, _| push_fault(p, &mut rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printing a plan and parsing it back is the identity, and the spec
    /// string itself is stable under a second round-trip.
    #[test]
    fn spec_round_trips_for_every_fault_kind(seed in any::<u64>(), n in 0usize..8) {
        let plan = gen_plan(seed, n);
        let spec = plan.to_spec();
        let back = FaultPlan::from_spec(&spec).expect("parse printed spec");
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.to_spec(), spec);
    }

    /// Every single-fault removal shrinks the plan by exactly one, stays a
    /// subset of the original, and still survives the spec round-trip —
    /// the contract the campaign shrinker depends on.
    #[test]
    fn without_shrinks_compatibly(seed in any::<u64>(), n in 1usize..8) {
        let plan = gen_plan(seed, n);
        for i in 0..plan.len() {
            let smaller = plan.without(i);
            prop_assert_eq!(smaller.len(), plan.len() - 1);
            prop_assert!(smaller.is_subset_of(&plan), "without({}) not a subset", i);
            prop_assert!(
                !plan.is_subset_of(&smaller),
                "original still a subset after dropping fault {}",
                i
            );
            let spec = smaller.to_spec();
            let back = FaultPlan::from_spec(&spec).expect("parse shrunk spec");
            prop_assert_eq!(&back, &smaller);
        }
    }
}
