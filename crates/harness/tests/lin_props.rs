//! Differential property test: the WGL-style memoized linearizability
//! checker must agree — accept *and* reject — with the brute-force
//! permutation checker on every random history of up to 6 operations,
//! including pending ops and multi-client overlap. The brute-force side is
//! factorial and written without any of the WGL machinery, so agreement
//! here is real evidence the search + memoization are sound.

use cb_harness::linearizability::{brute_force_check, wgl_check, Op, OpKind};
use proptest::prelude::*;

/// A random history on a single register: tiny time grid (lots of overlap
/// and exact-tie corner cases), values from a small alphabet so reads have
/// a real chance of matching a write, ~1-in-5 ops pending.
fn gen_history(rng: &mut TestRng, n: usize) -> Vec<Op> {
    (0..n)
        .map(|_| {
            let invoke_ns = rng.below(12);
            let respond_ns = if rng.below(5) == 0 {
                None
            } else {
                Some(invoke_ns + 1 + rng.below(8))
            };
            let value = rng.below(3);
            let kind = if rng.below(2) == 0 {
                OpKind::Write(value)
            } else {
                OpKind::Read(value)
            };
            Op {
                client: rng.below(3),
                key: 0,
                kind,
                invoke_ns,
                respond_ns,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    /// WGL ≡ brute force on all histories of ≤ 6 ops.
    #[test]
    fn wgl_matches_brute_force(seed in any::<u64>(), n in 0usize..7) {
        let mut rng = TestRng::seed_from(seed);
        let history = gen_history(&mut rng, n);
        let wgl = wgl_check(&history);
        let brute = brute_force_check(&history);
        prop_assert!(
            wgl == brute,
            "checkers disagree: wgl={wgl} brute={brute} history={history:?}"
        );
    }

    /// Same agreement when every op has completed — the common campaign
    /// shape — biasing the generator toward decided histories.
    #[test]
    fn wgl_matches_brute_force_on_complete_histories(seed in any::<u64>(), n in 0usize..7) {
        let mut rng = TestRng::seed_from(seed);
        let mut history = gen_history(&mut rng, n);
        for op in &mut history {
            if op.respond_ns.is_none() {
                op.respond_ns = Some(op.invoke_ns + 1 + rng.below(8));
            }
        }
        let wgl = wgl_check(&history);
        let brute = brute_force_check(&history);
        prop_assert!(
            wgl == brute,
            "checkers disagree: wgl={wgl} brute={brute} history={history:?}"
        );
    }
}
