//! Declarative fault plans.
//!
//! A [`FaultPlan`] is an ordered list of [`Fault`]s — crashes, restarts,
//! partitions, extra message loss, and churn windows — that a campaign
//! composes declaratively and the harness applies to a `Sim` before and
//! during a run. Plans round-trip through a compact spec string
//! ([`FaultPlan::to_spec`] / [`FaultPlan::from_spec`]) so a failure artifact
//! can name the exact plan that produced it and `--replay` can rebuild it.
//!
//! Spec grammar (faults joined by `;`):
//!
//! ```text
//! crash:<node>@<ms>
//! restart:<node>@<ms>
//! part:<a.b.c>|<d.e>@<from_ms>-<heal_ms|never>
//! loss:<pct>@<from_ms>-<until_ms>
//! churn:<n0.n1>@<from_ms>-<until_ms>/<up_mean_ms>/<down_mean_ms>
//! stall:<node>@<from_ms>-<until_ms>
//! delayspike:<extra_ms>@<from_ms>-<until_ms>
//! ```

use cb_simnet::prelude::{Actor, NodeId, Sim, SimDuration, SimTime};
use std::fmt;

/// One injected fault.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// Crash `node` at `at`.
    Crash {
        /// Victim node.
        node: NodeId,
        /// Crash time.
        at: SimTime,
    },
    /// Restart `node` (with fresh state) at `at`.
    Restart {
        /// Node to restart.
        node: NodeId,
        /// Restart time.
        at: SimTime,
    },
    /// Partition `group_a` from `group_b` during `[from, heal)`; if `heal`
    /// is `None` the partition is never healed.
    Partition {
        /// One side of the cut.
        group_a: Vec<NodeId>,
        /// Other side of the cut.
        group_b: Vec<NodeId>,
        /// When the cut starts.
        from: SimTime,
        /// When the cut heals (`None` = never).
        heal: Option<SimTime>,
    },
    /// Add `pct` (0..=0.95) extra loss on every path during
    /// `[from, until)`, then remove it.
    Loss {
        /// Extra loss probability added to every path.
        pct: f64,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// Gray failure: pause `node` during `[from, until)` without breaking
    /// its connections. The node processes nothing while stalled — events
    /// addressed to it are deferred to `until` — so peers see it go quiet
    /// and their model snapshots of it age, but no crash is observed.
    Stall {
        /// Node to pause.
        node: NodeId,
        /// Window start.
        from: SimTime,
        /// Window end (events resume here).
        until: SimTime,
    },
    /// Latency storm: add `extra` one-way latency to every path during
    /// `[from, until)`, then remove it.
    DelaySpike {
        /// Extra one-way latency on every path.
        extra: SimDuration,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// Crash/restart churn over `nodes` during `[from, until)` with
    /// exponential up/down times.
    Churn {
        /// Nodes subject to churn.
        nodes: Vec<NodeId>,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// Mean up-time.
        up_mean: SimDuration,
        /// Mean down-time.
        down_mean: SimDuration,
    },
}

impl Fault {
    /// Renders one fault in the spec mini-language.
    pub fn to_spec(&self) -> String {
        fn group(g: &[NodeId]) -> String {
            g.iter()
                .map(|n| n.0.to_string())
                .collect::<Vec<_>>()
                .join(".")
        }
        match self {
            Fault::Crash { node, at } => format!("crash:{}@{}", node.0, at.as_millis()),
            Fault::Restart { node, at } => format!("restart:{}@{}", node.0, at.as_millis()),
            Fault::Partition {
                group_a,
                group_b,
                from,
                heal,
            } => format!(
                "part:{}|{}@{}-{}",
                group(group_a),
                group(group_b),
                from.as_millis(),
                match heal {
                    Some(h) => h.as_millis().to_string(),
                    None => "never".to_string(),
                }
            ),
            Fault::Loss { pct, from, until } => format!(
                "loss:{}@{}-{}",
                (pct * 100.0).round() as u64,
                from.as_millis(),
                until.as_millis()
            ),
            Fault::Stall { node, from, until } => format!(
                "stall:{}@{}-{}",
                node.0,
                from.as_millis(),
                until.as_millis()
            ),
            Fault::DelaySpike { extra, from, until } => format!(
                "delayspike:{}@{}-{}",
                extra.as_millis(),
                from.as_millis(),
                until.as_millis()
            ),
            Fault::Churn {
                nodes,
                from,
                until,
                up_mean,
                down_mean,
            } => format!(
                "churn:{}@{}-{}/{}/{}",
                group(nodes),
                from.as_millis(),
                until.as_millis(),
                up_mean.as_millis(),
                down_mean.as_millis()
            ),
        }
    }

    /// Parses one fault from the spec mini-language.
    pub fn from_spec(spec: &str) -> Result<Fault, PlanParseError> {
        let err = |msg: &str| PlanParseError {
            spec: spec.to_string(),
            msg: msg.to_string(),
        };
        let (kind, rest) = spec.split_once(':').ok_or_else(|| err("missing ':'"))?;
        let parse_ms = |s: &str| -> Result<SimTime, PlanParseError> {
            s.parse::<u64>()
                .map(SimTime::from_millis)
                .map_err(|_| err("bad millisecond value"))
        };
        let parse_group = |s: &str| -> Result<Vec<NodeId>, PlanParseError> {
            if s.is_empty() {
                return Err(err("empty node group"));
            }
            s.split('.')
                .map(|p| p.parse::<u32>().map(NodeId).map_err(|_| err("bad node id")))
                .collect()
        };
        match kind {
            "crash" | "restart" => {
                let (node, at) = rest.split_once('@').ok_or_else(|| err("missing '@'"))?;
                let node = NodeId(node.parse().map_err(|_| err("bad node id"))?);
                let at = parse_ms(at)?;
                Ok(if kind == "crash" {
                    Fault::Crash { node, at }
                } else {
                    Fault::Restart { node, at }
                })
            }
            "part" => {
                let (groups, window) = rest.split_once('@').ok_or_else(|| err("missing '@'"))?;
                let (ga, gb) = groups.split_once('|').ok_or_else(|| err("missing '|'"))?;
                let (from, heal) = window.split_once('-').ok_or_else(|| err("missing '-'"))?;
                Ok(Fault::Partition {
                    group_a: parse_group(ga)?,
                    group_b: parse_group(gb)?,
                    from: parse_ms(from)?,
                    heal: if heal == "never" {
                        None
                    } else {
                        Some(parse_ms(heal)?)
                    },
                })
            }
            "loss" => {
                let (pct, window) = rest.split_once('@').ok_or_else(|| err("missing '@'"))?;
                let (from, until) = window.split_once('-').ok_or_else(|| err("missing '-'"))?;
                let pct: f64 = pct.parse().map_err(|_| err("bad loss pct"))?;
                Ok(Fault::Loss {
                    pct: pct / 100.0,
                    from: parse_ms(from)?,
                    until: parse_ms(until)?,
                })
            }
            "stall" => {
                let (node, window) = rest.split_once('@').ok_or_else(|| err("missing '@'"))?;
                let (from, until) = window.split_once('-').ok_or_else(|| err("missing '-'"))?;
                Ok(Fault::Stall {
                    node: NodeId(node.parse().map_err(|_| err("bad node id"))?),
                    from: parse_ms(from)?,
                    until: parse_ms(until)?,
                })
            }
            "delayspike" => {
                let (extra, window) = rest.split_once('@').ok_or_else(|| err("missing '@'"))?;
                let (from, until) = window.split_once('-').ok_or_else(|| err("missing '-'"))?;
                Ok(Fault::DelaySpike {
                    extra: SimDuration::from_millis(
                        extra.parse().map_err(|_| err("bad extra latency"))?,
                    ),
                    from: parse_ms(from)?,
                    until: parse_ms(until)?,
                })
            }
            "churn" => {
                let (nodes, rest2) = rest.split_once('@').ok_or_else(|| err("missing '@'"))?;
                let mut parts = rest2.split('/');
                let window = parts.next().ok_or_else(|| err("missing window"))?;
                let up = parts.next().ok_or_else(|| err("missing up mean"))?;
                let down = parts.next().ok_or_else(|| err("missing down mean"))?;
                let (from, until) = window.split_once('-').ok_or_else(|| err("missing '-'"))?;
                Ok(Fault::Churn {
                    nodes: parse_group(nodes)?,
                    from: parse_ms(from)?,
                    until: parse_ms(until)?,
                    up_mean: SimDuration::from_millis(up.parse().map_err(|_| err("bad up mean"))?),
                    down_mean: SimDuration::from_millis(
                        down.parse().map_err(|_| err("bad down mean"))?,
                    ),
                })
            }
            other => Err(err(&format!("unknown fault kind '{other}'"))),
        }
    }
}

/// Error from [`FaultPlan::from_spec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending fragment.
    pub spec: String,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec '{}': {}", self.spec, self.msg)
    }
}

impl std::error::Error for PlanParseError {}

/// A declarative, ordered fault schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Faults in declaration order. Order is preserved through spec
    /// round-trips and matters for shrinking (faults are dropped by index).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (fault-free run).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builder: crash `node` at `at_ms` (milliseconds of sim time).
    pub fn crash(mut self, node: u32, at_ms: u64) -> Self {
        self.faults.push(Fault::Crash {
            node: NodeId(node),
            at: SimTime::from_millis(at_ms),
        });
        self
    }

    /// Builder: restart `node` at `at_ms`.
    pub fn restart(mut self, node: u32, at_ms: u64) -> Self {
        self.faults.push(Fault::Restart {
            node: NodeId(node),
            at: SimTime::from_millis(at_ms),
        });
        self
    }

    /// Builder: partition `a` from `b` during `[from_ms, heal_ms)`.
    pub fn partition(mut self, a: &[u32], b: &[u32], from_ms: u64, heal_ms: Option<u64>) -> Self {
        self.faults.push(Fault::Partition {
            group_a: a.iter().copied().map(NodeId).collect(),
            group_b: b.iter().copied().map(NodeId).collect(),
            from: SimTime::from_millis(from_ms),
            heal: heal_ms.map(SimTime::from_millis),
        });
        self
    }

    /// Builder: add `pct` loss (0..=0.95) on all paths during the window.
    pub fn loss(mut self, pct: f64, from_ms: u64, until_ms: u64) -> Self {
        self.faults.push(Fault::Loss {
            pct,
            from: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(until_ms),
        });
        self
    }

    /// Builder: pause `node` (gray failure; connections stay up) during
    /// `[from_ms, until_ms)`.
    pub fn stall(mut self, node: u32, from_ms: u64, until_ms: u64) -> Self {
        self.faults.push(Fault::Stall {
            node: NodeId(node),
            from: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(until_ms),
        });
        self
    }

    /// Builder: add `extra_ms` one-way latency on every path during
    /// `[from_ms, until_ms)`.
    pub fn delayspike(mut self, extra_ms: u64, from_ms: u64, until_ms: u64) -> Self {
        self.faults.push(Fault::DelaySpike {
            extra: SimDuration::from_millis(extra_ms),
            from: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(until_ms),
        });
        self
    }

    /// Builder: churn `nodes` during the window with the given mean up/down
    /// times (milliseconds).
    pub fn churn(
        mut self,
        nodes: &[u32],
        from_ms: u64,
        until_ms: u64,
        up_mean_ms: u64,
        down_mean_ms: u64,
    ) -> Self {
        self.faults.push(Fault::Churn {
            nodes: nodes.iter().copied().map(NodeId).collect(),
            from: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(until_ms),
            up_mean: SimDuration::from_millis(up_mean_ms),
            down_mean: SimDuration::from_millis(down_mean_ms),
        });
        self
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is fault-free.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A copy of the plan with the fault at `index` removed (used by the
    /// greedy shrinker).
    pub fn without(&self, index: usize) -> FaultPlan {
        let mut faults = self.faults.clone();
        faults.remove(index);
        FaultPlan { faults }
    }

    /// Whether every fault of `self` also appears in `other` (multiset
    /// subset; the shrink proptests assert this about shrunk plans).
    pub fn is_subset_of(&self, other: &FaultPlan) -> bool {
        let mut pool: Vec<&Fault> = other.faults.iter().collect();
        for f in &self.faults {
            match pool.iter().position(|g| *g == f) {
                Some(i) => {
                    pool.remove(i);
                }
                None => return false,
            }
        }
        true
    }

    /// Renders the whole plan as a `;`-joined spec string.
    pub fn to_spec(&self) -> String {
        self.faults
            .iter()
            .map(Fault::to_spec)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Parses a `;`-joined spec string back into a plan.
    pub fn from_spec(spec: &str) -> Result<FaultPlan, PlanParseError> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultPlan::none());
        }
        let faults = spec
            .split(';')
            .map(|s| Fault::from_spec(s.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { faults })
    }

    /// The sorted set of time boundaries at which the driver must regain
    /// control to apply or revert a topology-level fault (partition edges
    /// and loss-window edges). Crash/restart/churn are handled by the
    /// simulator's own scheduler and need no boundary.
    fn boundaries(&self) -> Vec<SimTime> {
        let mut ts = Vec::new();
        for f in &self.faults {
            match f {
                Fault::Partition { from, heal, .. } => {
                    ts.push(*from);
                    if let Some(h) = heal {
                        ts.push(*h);
                    }
                }
                Fault::Loss { from, until, .. } => {
                    ts.push(*from);
                    ts.push(*until);
                }
                // A stall only needs control at its start; the simulator
                // defers the node's events until the window end by itself.
                Fault::Stall { from, .. } => ts.push(*from),
                Fault::DelaySpike { from, until, .. } => {
                    ts.push(*from);
                    ts.push(*until);
                }
                _ => {}
            }
        }
        ts.sort();
        ts.dedup();
        ts
    }

    /// Applies the plan to `sim` and runs it to `horizon`.
    ///
    /// Crashes, restarts and churn are pre-scheduled through the simulator's
    /// event queue (so they interleave deterministically with protocol
    /// events). Partitions and loss windows are applied by stepping the sim
    /// to each window boundary and editing the blocked-pair set / topology
    /// in place. After the last boundary the sim runs until it is quiescent
    /// or `horizon` is reached, whichever comes first.
    ///
    /// Returns the sim time at which the run settled.
    pub fn drive<A: Actor>(&self, sim: &mut Sim<A>, churn_seed: u64, horizon: SimTime) -> SimTime {
        // Pre-schedule queue-borne faults.
        for f in &self.faults {
            match f {
                Fault::Crash { node, at } => sim.schedule_crash(*node, *at),
                Fault::Restart { node, at } => sim.schedule_restart(*node, *at),
                Fault::Churn {
                    nodes,
                    from,
                    until,
                    up_mean,
                    down_mean,
                } => {
                    sim.schedule_churn(nodes, *from, *until, *up_mean, *down_mean, churn_seed);
                }
                _ => {}
            }
        }
        // Step through topology-fault boundaries.
        for t in self.boundaries() {
            if t >= horizon {
                break;
            }
            sim.run_until(t);
            for f in &self.faults {
                match f {
                    Fault::Partition {
                        group_a,
                        group_b,
                        from,
                        heal,
                    } => {
                        if *from == t {
                            sim.partition(group_a, group_b);
                        }
                        if *heal == Some(t) {
                            // Per-pair unblock rather than heal_all so
                            // overlapping partitions stay intact.
                            for &a in group_a {
                                for &b in group_b {
                                    // Blackholes are directed; the partition
                                    // blocked both directions.
                                    sim.unblock(a, b);
                                    sim.unblock(b, a);
                                }
                            }
                        }
                    }
                    Fault::Loss { pct, from, until } => {
                        if *from == t {
                            sim.topology_mut().add_loss_all(*pct);
                        }
                        if *until == t {
                            sim.topology_mut().add_loss_all(-*pct);
                        }
                    }
                    Fault::Stall { node, from, until } if *from == t => {
                        sim.stall_until(*node, *until);
                    }
                    Fault::Stall { .. } => {}
                    Fault::DelaySpike { extra, from, until } => {
                        if *from == t {
                            sim.topology_mut().add_latency_all(*extra);
                        }
                        if *until == t {
                            sim.topology_mut().sub_latency_all(*extra);
                        }
                    }
                    _ => {}
                }
            }
        }
        sim.run_until_quiescent(horizon)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "(no faults)")
        } else {
            write!(f, "{}", self.to_spec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::none()
            .crash(3, 500)
            .restart(3, 1500)
            .partition(&[0, 1], &[2, 3], 200, Some(900))
            .partition(&[4], &[5], 100, None)
            .loss(0.25, 50, 400)
            .churn(&[6, 7], 0, 2000, 300, 120)
            .stall(8, 100, 600)
            .delayspike(150, 250, 700)
    }

    #[test]
    fn spec_round_trip() {
        let plan = sample_plan();
        let spec = plan.to_spec();
        let back = FaultPlan::from_spec(&spec).expect("parse");
        assert_eq!(plan, back);
        // And the spec itself is stable.
        assert_eq!(back.to_spec(), spec);
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        assert!(FaultPlan::from_spec("").unwrap().is_empty());
        assert!(FaultPlan::from_spec("  ").unwrap().is_empty());
        assert_eq!(FaultPlan::none().to_spec(), "");
    }

    #[test]
    fn bad_specs_error() {
        for bad in [
            "bogus:1@2",
            "crash:x@2",
            "crash:1",
            "part:1|2@5",
            "part:|2@5-9",
            "loss:ten@1-2",
            "churn:1@2-3/4",
            "stall:1@2",
            "stall:x@2-3",
            "delayspike:x@1-2",
            "delayspike:5@1",
        ] {
            assert!(FaultPlan::from_spec(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn without_drops_exactly_one() {
        let plan = sample_plan();
        let smaller = plan.without(2);
        assert_eq!(smaller.len(), plan.len() - 1);
        assert!(smaller.is_subset_of(&plan));
        assert!(!plan.is_subset_of(&smaller));
    }

    #[test]
    fn subset_is_multiset_aware() {
        let twice = FaultPlan::none().crash(1, 10).crash(1, 10);
        let once = FaultPlan::none().crash(1, 10);
        assert!(once.is_subset_of(&twice));
        assert!(!twice.is_subset_of(&once));
    }

    #[test]
    fn boundaries_sorted_deduped() {
        let plan = sample_plan();
        let b = plan.boundaries();
        let mut sorted = b.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(b, sorted);
        // part@200-900, part@100-never, loss@50-400, stall@100-600 (start
        // only), delayspike@250-700.
        assert_eq!(
            b,
            vec![
                SimTime::from_millis(50),
                SimTime::from_millis(100),
                SimTime::from_millis(200),
                SimTime::from_millis(250),
                SimTime::from_millis(400),
                SimTime::from_millis(700),
                SimTime::from_millis(900),
            ]
        );
    }

    #[test]
    fn display_uses_spec() {
        assert_eq!(format!("{}", FaultPlan::none()), "(no faults)");
        let p = FaultPlan::none().crash(1, 10);
        assert_eq!(format!("{p}"), "crash:1@10");
    }
}
