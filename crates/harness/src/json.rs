//! A minimal JSON value type with a writer and a parser.
//!
//! The workspace builds fully offline, so `serde_json` is unavailable. This
//! module covers what campaign artifacts (and the bench tables) need:
//! deterministic serialization (object keys keep insertion order), pretty
//! printing, and a strict recursive-descent parser for replaying artifacts.
//!
//! Numbers are stored as `f64`; anything that must survive a round trip at
//! full 64-bit precision (seeds, fingerprints) is stored as a string by the
//! artifact writer.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Parses a complete JSON document (see the module-level [`parse`]).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        parse(input)
    }

    /// Adds (or replaces) a field on an object; panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(fields) = self else {
            panic!("Json::set on a non-object");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            fields.push((key, value));
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as `u64`: accepts integral numbers and decimal strings
    /// (the artifact encoding for full-precision 64-bit values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no Infinity/NaN; encode as null.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Beyond 2^53 the f64 round trip is lossy; callers needing full
        // precision (seeds, fingerprints) should store strings instead.
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}
impl From<Vec<String>> for Json {
    fn from(items: Vec<String>) -> Json {
        Json::Arr(items.into_iter().map(Json::Str).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// Human-readable cause.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is not.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(at: usize, msg: &str) -> ParseError {
    ParseError {
        at,
        msg: msg.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "unexpected token"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(err(*pos, "unexpected end of input"));
    };
    match c {
        b'n' => expect(b, pos, "null").map(|()| Json::Null),
        b't' => expect(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect(b, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(&b',') => *pos += 1,
                    Some(&b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => Err(err(*pos, "unexpected character")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(err(*pos, "unterminated string"));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err(err(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if *pos + 4 > b.len() {
                            return Err(err(*pos, "short \\u escape"));
                        }
                        let hex = std::str::from_utf8(&b[*pos..*pos + 4])
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| err(*pos, "bad \\u hex"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
            }
            _ if c < 0x80 => out.push(c as char),
            _ => {
                // Multi-byte UTF-8: the lead byte tells us the sequence
                // length, so validate just this character's bytes (never the
                // whole remaining input — that would be quadratic over large
                // documents).
                let len = match c {
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    0xf0..=0xf7 => 4,
                    _ => return Err(err(*pos - 1, "invalid utf-8")),
                };
                let start = *pos - 1;
                let end = start + len;
                if end > b.len() {
                    return Err(err(start, "invalid utf-8"));
                }
                let s =
                    std::str::from_utf8(&b[start..end]).map_err(|_| err(start, "invalid utf-8"))?;
                out.push(s.chars().next().expect("nonempty"));
                *pos = end;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let doc = Json::obj()
            .with("name", "campaign")
            .with("seed", "18446744073709551615")
            .with("count", 42u64)
            .with("ratio", 0.5)
            .with("ok", true)
            .with("none", Json::Null)
            .with(
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Str("two\nlines".into())]),
            );
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let back = parse(&text).expect("parse");
            assert_eq!(back, doc, "failed on {text}");
        }
    }

    #[test]
    fn full_precision_u64_via_strings() {
        let doc = Json::obj().with("fp", u64::MAX.to_string());
        let back = parse(&doc.to_string_compact()).expect("parse");
        assert_eq!(back.get("fp").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn escapes_are_parsed() {
        let v = parse(r#"{"s": "a\"b\\c\ndA"}"#).expect("parse");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut o = Json::obj().with("k", 1u64);
        o.set("k", 2u64);
        assert_eq!(o.get("k").and_then(Json::as_u64), Some(2));
    }
}
