//! The decision-provenance section of campaign artifacts.
//!
//! Every [`RunReport`](crate::scenario::RunReport) embeds a bounded tail of
//! the fleet's flight recorders — the causally-linked spans cb-simnet and
//! cb-core record along the decision path — plus, on failing runs, one
//! synthesised [`SpanKind::Violation`] span per failing oracle whose parents
//! anchor it to the last activity (and last decision) on every node. The
//! `trace` CLI's `blame` query walks those parent edges from the violation
//! back to the originating decisions.
//!
//! Determinism follows the dual-clock discipline: every span field except
//! `wall_ns` is a pure function of `(scenario, seed, plan)`, so
//! [`provenance_json`] with `masked = true` is byte-identical across replays
//! of the same seed. The JSON key is literally `wall_ns` so generic
//! key-contains-"wall" masking (the CI determinism check) blanks it without
//! knowing the schema.

use crate::json::Json;
use cb_simnet::prelude::{Actor, Sim};
use cb_trace::{Span, SpanId, SpanKind};
use std::collections::{BTreeMap, VecDeque};

/// Schema tag of the `provenance` artifact section.
pub const PROVENANCE_SCHEMA: &str = "cb-provenance/v1";

/// How many trailing spans per node a report embeds (before the
/// retained-parent closure pulls in any older causal ancestors).
pub const TAIL_PER_NODE: usize = 128;

/// Budget multiplier for the retained-parent closure: the closure may at
/// most double the seeded tail (`TAIL_PER_NODE` × nodes). Without a budget
/// the closure can chase causal ancestry back through nearly the whole
/// retained ring (long-running fleets produced 20k+-span, 13 MB artifacts);
/// parents beyond the budget surface as `unresolved` in `trace blame`, the
/// same way ring-evicted ancestors do.
pub const CLOSURE_BUDGET_FACTOR: usize = 2;

/// Node id reserved for harness-synthesised spans (oracle violations).
pub const VIOLATION_NODE: u32 = u32::MAX;

/// Collects the embedded tail: the last [`TAIL_PER_NODE`] spans of every
/// node's flight recorder, closed over causal parents that are still
/// retained anywhere in the fleet (so a blame chain does not dead-end just
/// because an ancestor fell outside the per-node tail). The closure expands
/// breadth-first in span-id order and stops once the total span count
/// reaches [`CLOSURE_BUDGET_FACTOR`] × the seeded tail, keeping artifacts
/// bounded on long runs; truncated parents show up as `unresolved` in blame
/// walks, exactly like ring-evicted ones. Sorted by span id
/// `(at_ns, node, seq)`; deterministic for a given seed.
pub fn collect_tail<A: Actor>(sim: &Sim<A>, per_node: usize) -> Vec<Span> {
    let mut all: BTreeMap<SpanId, &Span> = BTreeMap::new();
    for rec in sim.flight_recorders() {
        for s in rec.spans() {
            all.insert(s.id, s);
        }
    }
    let mut picked: BTreeMap<SpanId, &Span> = BTreeMap::new();
    let mut queue: VecDeque<SpanId> = VecDeque::new();
    for rec in sim.flight_recorders() {
        for s in rec.tail(per_node) {
            if picked.insert(s.id, s).is_none() {
                queue.push_back(s.id);
            }
        }
        // Decisions are the point of the exercise: seed the export with each
        // node's retained decision spans (bounded by the recorder's pinned
        // side-ring plus whatever the main ring still holds, capped here) so
        // the violation span's decision-parent edges resolve in the tail
        // even when the last decision predates the per-node window.
        let decisions: Vec<&Span> = rec
            .spans()
            .filter(|s| s.kind == SpanKind::Decision)
            .collect();
        let skip = decisions
            .len()
            .saturating_sub(cb_trace::DECISION_PIN_CAPACITY);
        for s in &decisions[skip..] {
            if picked.insert(s.id, s).is_none() {
                queue.push_back(s.id);
            }
        }
    }
    let budget = picked.len().saturating_mul(CLOSURE_BUDGET_FACTOR).max(1);
    while let Some(id) = queue.pop_front() {
        if picked.len() >= budget {
            break;
        }
        let parents = picked
            .get(&id)
            .map(|s| s.parents.clone())
            .unwrap_or_default();
        for p in parents {
            if picked.len() >= budget {
                break;
            }
            if let Some(span) = all.get(&p) {
                if picked.insert(p, span).is_none() {
                    queue.push_back(p);
                }
            }
        }
    }
    picked.into_values().cloned().collect()
}

/// Synthesises one [`SpanKind::Violation`] span per failing oracle.
///
/// Each violation's parents are, for every node (in node order): the last
/// span the node retained, and additionally its last retained
/// [`SpanKind::Decision`] span when that is not already the last span —
/// guaranteeing `blame` can reach at least one decision without scanning.
pub fn violation_spans<A: Actor>(sim: &Sim<A>, failing: &[(String, String)]) -> Vec<Span> {
    let at_ns = sim.now().as_nanos();
    let mut parents: Vec<SpanId> = Vec::new();
    for rec in sim.flight_recorders() {
        let last = rec.spans().last();
        let last_decision = rec.spans().filter(|s| s.kind == SpanKind::Decision).last();
        if let Some(s) = last {
            parents.push(s.id);
        }
        if let Some(d) = last_decision {
            if last.map(|s| s.id) != Some(d.id) {
                parents.push(d.id);
            }
        }
    }
    failing
        .iter()
        .enumerate()
        .map(|(k, (name, detail))| {
            let id = SpanId {
                at_ns,
                node: VIOLATION_NODE,
                seq: (k + 1) as u32,
            };
            Span::new(id, SpanKind::Violation, name.clone(), parents.clone())
                .with_attr("oracle", name.clone())
                .with_attr("detail", detail.clone())
        })
        .collect()
}

/// Renders one span. `u64` clock fields ride decimal strings (the artifact
/// convention for values that must survive the f64-backed number type).
pub fn span_json(s: &Span) -> Json {
    let mut attrs = Json::obj();
    for (k, v) in &s.attrs {
        attrs.set(k.clone(), v.as_str());
    }
    Json::obj()
        .with("id", s.id.to_string())
        .with("kind", s.kind.label())
        .with("name", s.name.as_str())
        .with(
            "parents",
            s.parents.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
        )
        .with("sim_cost_us", s.sim_cost_us.to_string())
        .with("wall_ns", s.wall_ns.to_string())
        .with("attrs", attrs)
}

fn field_u64(j: &Json, key: &str) -> u64 {
    match j.get(key) {
        Some(Json::Str(s)) => s.parse().unwrap_or(0),
        Some(v) => v.as_u64().unwrap_or(0),
        None => 0,
    }
}

/// Parses one span rendered by [`span_json`]. Tolerates blanked/absent
/// `wall_ns` (masked exports) but rejects structural damage.
pub fn span_from_json(j: &Json) -> Result<Span, String> {
    let id: SpanId = j
        .get("id")
        .and_then(Json::as_str)
        .ok_or("span missing 'id'")?
        .parse()?;
    let kind_label = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("span missing 'kind'")?;
    let kind =
        SpanKind::parse(kind_label).ok_or_else(|| format!("unknown span kind '{kind_label}'"))?;
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or("span missing 'name'")?
        .to_string();
    let mut parents = Vec::new();
    for p in j
        .get("parents")
        .and_then(Json::as_array)
        .ok_or("span missing 'parents'")?
    {
        parents.push(p.as_str().ok_or("non-string parent id")?.parse()?);
    }
    let mut span = Span::new(id, kind, name, parents);
    span.sim_cost_us = field_u64(j, "sim_cost_us");
    span.wall_ns = field_u64(j, "wall_ns");
    if let Some(Json::Obj(pairs)) = j.get("attrs") {
        for (k, v) in pairs {
            if let Some(text) = v.as_str() {
                span.attrs.push((k.clone(), text.to_string()));
            }
        }
    }
    Ok(span)
}

/// Renders the full `provenance` artifact section. With `masked = true`
/// every span's `wall_ns` is zeroed first, making the output byte-identical
/// across replays of the same `(scenario, seed, plan)`.
pub fn provenance_json(spans: &[Span], recorded: u64, evicted: u64, masked: bool) -> Json {
    let violations: Vec<String> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Violation)
        .map(|s| s.id.to_string())
        .collect();
    Json::obj()
        .with("schema", PROVENANCE_SCHEMA)
        .with("recorded", recorded.to_string())
        .with("evicted", evicted.to_string())
        .with("violations", violations)
        .with(
            "spans",
            Json::Arr(
                spans
                    .iter()
                    .map(|s| {
                        if masked {
                            span_json(&s.masked())
                        } else {
                            span_json(s)
                        }
                    })
                    .collect(),
            ),
        )
}

/// Parses a `provenance` section back into spans. Used by the `trace` CLI
/// and the replay tail-equality check.
pub fn parse_provenance(j: &Json) -> Result<Vec<Span>, String> {
    let schema = j
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("provenance missing 'schema'")?;
    if schema != PROVENANCE_SCHEMA {
        return Err(format!(
            "unknown provenance schema '{schema}' (want '{PROVENANCE_SCHEMA}')"
        ));
    }
    j.get("spans")
        .and_then(Json::as_array)
        .ok_or_else(|| "provenance missing 'spans'".to_string())?
        .iter()
        .map(span_from_json)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> Span {
        let mut s = Span::new(
            SpanId {
                at_ns: 1_500_000,
                node: 2,
                seq: 9,
            },
            SpanKind::Decision,
            "decide:parent.pick",
            vec![SpanId {
                at_ns: 1_400_000,
                node: 2,
                seq: 8,
            }],
        );
        s.sim_cost_us = 40;
        s.wall_ns = 12_345;
        s.attrs.push(("chosen".into(), "1".into()));
        s.attrs.push(("options".into(), "3".into()));
        s
    }

    #[test]
    fn span_round_trips_through_json() {
        let s = sample_span();
        let j = span_json(&s);
        let back = span_from_json(&j).expect("parse");
        assert_eq!(back, s);
    }

    #[test]
    fn provenance_round_trips_and_lists_violations() {
        let v = Span::new(
            SpanId {
                at_ns: 2_000_000,
                node: VIOLATION_NODE,
                seq: 1,
            },
            SpanKind::Violation,
            "tree.reachable",
            vec![sample_span().id],
        );
        let spans = vec![sample_span(), v.clone()];
        let j = provenance_json(&spans, 10, 0, false);
        assert_eq!(
            j.get("violations").and_then(Json::as_array).unwrap().len(),
            1
        );
        let back = parse_provenance(&j).expect("parse");
        assert_eq!(back, spans);
    }

    #[test]
    fn masked_rendering_zeroes_wall_only() {
        let spans = vec![sample_span()];
        let mut other = sample_span();
        other.wall_ns = 99_999;
        let a = provenance_json(&spans, 1, 0, true).to_string_compact();
        let b = provenance_json(&[other.clone()], 1, 0, true).to_string_compact();
        assert_eq!(a, b, "masked exports must ignore wall noise");
        let unmasked = provenance_json(&[other], 1, 0, false).to_string_compact();
        assert_ne!(a, unmasked);
    }

    #[test]
    fn span_from_json_rejects_damage() {
        let j = span_json(&sample_span());
        let mut missing = j.clone();
        if let Json::Obj(pairs) = &mut missing {
            pairs.retain(|(k, _)| k != "kind");
        }
        assert!(span_from_json(&missing).is_err());
        let bad = Json::obj().with("id", "garbage");
        assert!(span_from_json(&bad).is_err());
    }
}
