//! The campaign runner.
//!
//! A [`Campaign`] sweeps N seeds in parallel over one [`Scenario`]: each
//! worker thread claims seeds off a shared counter, builds a fresh
//! deterministic `Sim` per seed, applies the scenario's (or a caller-
//! supplied) fault plan, and checks the scenario's oracles plus the generic
//! determinism oracle (run the seed twice, compare trace fingerprints).
//!
//! On violation the runner:
//!
//! 1. greedily **shrinks** the fault plan to a minimal reproduction — drop
//!    one fault at a time, keep the drop whenever the violation persists,
//!    repeat to fixpoint;
//! 2. writes a **JSON failure artifact** (seed, original + shrunk plan spec,
//!    oracle verdicts, last trace window, metrics) under
//!    `results/campaigns/`;
//! 3. supports **exact replay**: [`replay_artifact`] reloads the artifact,
//!    re-runs seed + plan, and checks the same violation (and fingerprint)
//!    reappears.

use crate::json::Json;
use crate::plan::FaultPlan;
use crate::provenance::{parse_provenance, provenance_json};
use crate::scenario::{RunReport, Scenario};
use cb_trace::Span;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration for one campaign sweep.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Seeds `base_seed..base_seed + seeds` are swept.
    pub base_seed: u64,
    /// How many seeds to run.
    pub seeds: u64,
    /// Worker threads (0 = one per available CPU, capped at 8).
    pub workers: usize,
    /// Re-run every seed and require identical fingerprints.
    pub check_determinism: bool,
    /// Shrink failing plans to a minimal repro before writing artifacts.
    pub shrink: bool,
    /// Where failure artifacts go; `None` disables writing.
    pub artifact_dir: Option<PathBuf>,
    /// Override the scenario's default plan for every seed.
    pub plan_override: Option<FaultPlan>,
    /// Keep every seed's first-run report in [`CampaignOutcome::reports`]
    /// (passing seeds' reports are otherwise dropped after merging). Corpus
    /// ingestion turns this on; sweeps that only need the aggregate leave
    /// it off to avoid retaining per-seed telemetry and provenance.
    pub keep_reports: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            base_seed: 1,
            seeds: 32,
            workers: 0,
            check_determinism: true,
            shrink: true,
            artifact_dir: Some(PathBuf::from("results/campaigns")),
            plan_override: None,
            keep_reports: false,
        }
    }
}

impl CampaignConfig {
    /// Resolved worker count.
    fn worker_count(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4)
            .max(1)
    }
}

/// One seed's failure, with the shrunk repro.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The full report from the failing run (original plan).
    pub report: RunReport,
    /// The plan after greedy shrinking (== original when shrinking is off
    /// or nothing could be dropped).
    pub shrunk_plan: FaultPlan,
    /// The report from the final shrunk run.
    pub shrunk_report: RunReport,
    /// Artifact path, when one was written.
    pub artifact: Option<PathBuf>,
}

/// Aggregate outcome of a sweep.
#[derive(Debug, Default)]
pub struct CampaignOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Seeds that passed every oracle.
    pub passed: u64,
    /// Failures, in seed order.
    pub failures: Vec<Failure>,
    /// Seeds whose re-run produced a different fingerprint (determinism
    /// violations are reported separately from oracle failures).
    pub nondeterministic_seeds: Vec<u64>,
    /// Total events processed across all runs.
    pub total_events: u64,
    /// Telemetry merged across every seed's first run (counters add, gauges
    /// keep peaks, histograms merge) — the per-scenario aggregate that
    /// `cb-bench` summarizes.
    pub telemetry: cb_telemetry::Registry,
    /// Policy stores recorded by the seeds' runs, merged in seed order.
    /// The merge rule is commutative, associative, and idempotent, so the
    /// result is invariant under worker count and determinism re-runs.
    pub policy: Option<cb_policy::PolicyStore>,
    /// Every seed's first-run report, in seed order — populated only when
    /// [`CampaignConfig::keep_reports`] is set. Because each report is a
    /// pure function of `(scenario, seed, plan)`, this vector is invariant
    /// under worker count.
    pub reports: Vec<RunReport>,
}

impl CampaignOutcome {
    /// Whether every seed passed every oracle and determinism held.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty() && self.nondeterministic_seeds.is_empty()
    }

    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "campaign[{}]: {} passed, {} failed, {} nondeterministic ({} events)",
            self.scenario,
            self.passed,
            self.failures.len(),
            self.nondeterministic_seeds.len(),
            self.total_events
        )
    }
}

/// Sweeps seeds over a scenario according to `config`.
pub fn run_campaign(scenario: &dyn Scenario, config: &CampaignConfig) -> CampaignOutcome {
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(u64, RunReport, bool)>> = Mutex::new(Vec::new());
    let total = config.seeds as usize;

    std::thread::scope(|scope| {
        for _ in 0..config.worker_count().min(total.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let seed = config.base_seed + i as u64;
                let plan = config
                    .plan_override
                    .clone()
                    .unwrap_or_else(|| scenario.default_plan(seed));
                let report = scenario.run(seed, &plan);
                let deterministic = if config.check_determinism {
                    let again = scenario.run(seed, &plan);
                    again.fingerprint == report.fingerprint
                } else {
                    true
                };
                results.lock().expect("campaign results poisoned").push((
                    seed,
                    report,
                    deterministic,
                ));
            });
        }
    });

    let mut rows = results.into_inner().expect("campaign results poisoned");
    rows.sort_by_key(|(seed, _, _)| *seed);

    let mut outcome = CampaignOutcome {
        scenario: scenario.name().to_string(),
        ..CampaignOutcome::default()
    };
    for (seed, report, deterministic) in rows {
        if config.keep_reports {
            outcome.reports.push(report.clone());
        }
        outcome.total_events += report.events_processed;
        outcome.telemetry.merge(&report.telemetry);
        if let Some(recorded) = &report.policy {
            match &mut outcome.policy {
                Some(merged) => merged.merge(recorded),
                None => outcome.policy = Some(recorded.clone()),
            }
        }
        if !deterministic {
            outcome.nondeterministic_seeds.push(seed);
        }
        if report.violated() {
            let (shrunk_plan, shrunk_report) = if config.shrink {
                shrink_plan(scenario, seed, &report.plan, &report)
            } else {
                (report.plan.clone(), report.clone())
            };
            let artifact = config
                .artifact_dir
                .as_deref()
                .and_then(|dir| write_artifact(dir, &report, &shrunk_plan, &shrunk_report).ok());
            outcome.failures.push(Failure {
                report,
                shrunk_plan,
                shrunk_report,
                artifact,
            });
        } else if deterministic {
            outcome.passed += 1;
        }
    }
    outcome
}

/// Returns true when `candidate` reproduces the *same* violation as
/// `original` — i.e. every oracle that failed originally still fails.
fn same_violation(original: &RunReport, candidate: &RunReport) -> bool {
    let orig: Vec<&str> = original.failing_oracles();
    let cand = candidate.failing_oracles();
    !orig.is_empty() && orig.iter().all(|name| cand.contains(name))
}

/// Greedily shrinks `plan` to a minimal fault set that still reproduces the
/// violation in `failing`: repeatedly try dropping each fault; keep any drop
/// after which the failing oracles still fail; stop at a fixpoint.
///
/// Returns the shrunk plan and the report of its (still-failing) run.
pub fn shrink_plan(
    scenario: &dyn Scenario,
    seed: u64,
    plan: &FaultPlan,
    failing: &RunReport,
) -> (FaultPlan, RunReport) {
    let mut best_plan = plan.clone();
    let mut best_report = failing.clone();
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best_plan.len() {
            let candidate = best_plan.without(i);
            let report = scenario.run(seed, &candidate);
            if same_violation(failing, &report) {
                best_plan = candidate;
                best_report = report;
                improved = true;
                // Do not advance i: the fault now at index i is untested.
            } else {
                i += 1;
            }
        }
        if !improved {
            break;
        }
    }
    (best_plan, best_report)
}

/// Artifact schema version tag.
pub const ARTIFACT_SCHEMA: &str = "cb-campaign-failure/v1";

/// Serializes a failure artifact.
pub fn artifact_json(
    report: &RunReport,
    shrunk_plan: &FaultPlan,
    shrunk_report: &RunReport,
) -> Json {
    Json::obj()
        .with("schema", ARTIFACT_SCHEMA)
        .with("scenario", report.scenario.as_str())
        .with("seed", report.seed.to_string())
        .with("plan", report.plan.to_spec().as_str())
        .with("shrunk_plan", shrunk_plan.to_spec().as_str())
        .with(
            "failing_oracles",
            report
                .failing_oracles()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
        )
        .with("report", report.to_json())
        .with("shrunk_report", shrunk_report.to_json())
}

/// Writes a failure artifact under `dir`, returning its path.
pub fn write_artifact(
    dir: &Path,
    report: &RunReport,
    shrunk_plan: &FaultPlan,
    shrunk_report: &RunReport,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}-seed{}.json", report.scenario, report.seed));
    let json = artifact_json(report, shrunk_plan, shrunk_report);
    std::fs::write(&path, json.to_string_pretty() + "\n")?;
    Ok(path)
}

/// Error from [`replay_artifact`].
#[derive(Debug)]
pub enum ReplayError {
    /// The artifact file could not be read.
    Io(std::io::Error),
    /// The artifact was not valid JSON / not the expected schema.
    Malformed(String),
    /// The replay ran, but did not reproduce the recorded violation.
    NotReproduced {
        /// Oracles the artifact says failed.
        expected: Vec<String>,
        /// Oracles that failed on replay.
        got: Vec<String>,
    },
    /// The replay reproduced the violation, but its masked flight-recorder
    /// tail differs from the artifact's — a determinism bug in the span
    /// layer (the deterministic half of every span is supposed to be a pure
    /// function of seed and plan).
    ProvenanceMismatch {
        /// Spans recorded in the artifact's tail.
        artifact_spans: usize,
        /// Spans in the replay's tail.
        replay_spans: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "replay: {e}"),
            ReplayError::Malformed(m) => write!(f, "replay: malformed artifact: {m}"),
            ReplayError::NotReproduced { expected, got } => write!(
                f,
                "replay: violation not reproduced (expected {expected:?}, got {got:?})"
            ),
            ReplayError::ProvenanceMismatch {
                artifact_spans,
                replay_spans,
            } => write!(
                f,
                "replay: masked provenance tail diverged \
                 ({artifact_spans} artifact spans vs {replay_spans} replayed)"
            ),
        }
    }
}

/// The parsed essentials of a failure artifact.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Scenario name recorded in the artifact.
    pub scenario: String,
    /// Failing seed.
    pub seed: u64,
    /// Original plan.
    pub plan: FaultPlan,
    /// Shrunk plan (replay uses this by default).
    pub shrunk_plan: FaultPlan,
    /// Oracles the artifact says failed.
    pub failing_oracles: Vec<String>,
    /// Fingerprint of the original failing run.
    pub fingerprint: u64,
    /// The embedded flight-recorder tail (empty for artifacts written
    /// before the provenance section existed).
    pub provenance: Vec<Span>,
    /// Total spans the original run's recorders pushed.
    pub spans_recorded: u64,
    /// Spans the original run's bounded rings evicted.
    pub spans_evicted: u64,
}

/// Parses an artifact file.
pub fn read_artifact(path: &Path) -> Result<Artifact, ReplayError> {
    let text = std::fs::read_to_string(path).map_err(ReplayError::Io)?;
    let json = Json::parse(&text).map_err(|e| ReplayError::Malformed(format!("{e}")))?;
    let get_str = |key: &str| -> Result<String, ReplayError> {
        json.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ReplayError::Malformed(format!("missing '{key}'")))
    };
    let schema = get_str("schema")?;
    if schema != ARTIFACT_SCHEMA {
        return Err(ReplayError::Malformed(format!(
            "unknown schema '{schema}' (want '{ARTIFACT_SCHEMA}')"
        )));
    }
    let plan = FaultPlan::from_spec(&get_str("plan")?)
        .map_err(|e| ReplayError::Malformed(format!("{e}")))?;
    let shrunk_plan = FaultPlan::from_spec(&get_str("shrunk_plan")?)
        .map_err(|e| ReplayError::Malformed(format!("{e}")))?;
    let seed = json
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| ReplayError::Malformed("missing 'seed'".into()))?;
    let failing_oracles = json
        .get("failing_oracles")
        .and_then(Json::as_array)
        .map(|a| {
            a.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let fingerprint = json
        .get("report")
        .and_then(|r| r.get("fingerprint"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let prov_section = json.get("report").and_then(|r| r.get("provenance"));
    let provenance = match prov_section {
        Some(section) => parse_provenance(section).map_err(ReplayError::Malformed)?,
        None => Vec::new(),
    };
    let prov_u64 = |key: &str| -> u64 {
        prov_section
            .and_then(|s| s.get(key))
            .and_then(Json::as_str)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    Ok(Artifact {
        scenario: get_str("scenario")?,
        seed,
        plan,
        shrunk_plan,
        failing_oracles,
        fingerprint,
        provenance,
        spans_recorded: prov_u64("recorded"),
        spans_evicted: prov_u64("evicted"),
    })
}

/// Replays an artifact against `scenario`: re-runs the recorded seed under
/// the recorded (original) plan and checks that every recorded failing
/// oracle fails again — and, when the artifact embeds a provenance tail,
/// that the replay's *masked* tail is byte-identical to the recorded one
/// (wall clocks are the only nondeterministic span field). Returns the
/// replay report.
pub fn replay_artifact(
    scenario: &dyn Scenario,
    artifact: &Artifact,
) -> Result<RunReport, ReplayError> {
    let report = scenario.run(artifact.seed, &artifact.plan);
    let got: Vec<String> = report
        .failing_oracles()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let reproduced = !artifact.failing_oracles.is_empty()
        && artifact.failing_oracles.iter().all(|o| got.contains(o));
    if !reproduced {
        return Err(ReplayError::NotReproduced {
            expected: artifact.failing_oracles.clone(),
            got,
        });
    }
    if !artifact.provenance.is_empty() {
        let recorded = provenance_json(
            &artifact.provenance,
            artifact.spans_recorded,
            artifact.spans_evicted,
            true,
        )
        .to_string_compact();
        let replayed = report.provenance_masked_json().to_string_compact();
        if recorded != replayed {
            return Err(ReplayError::ProvenanceMismatch {
                artifact_spans: artifact.provenance.len(),
                replay_spans: report.provenance.len(),
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::RingScenario;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cb-harness-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn clean_campaign_passes_all_seeds() {
        let s = RingScenario::default();
        let cfg = CampaignConfig {
            seeds: 8,
            artifact_dir: None,
            ..CampaignConfig::default()
        };
        let out = run_campaign(&s, &cfg);
        assert!(out.all_passed(), "{}", out.summary_line());
        assert_eq!(out.passed, 8);
        assert!(out.total_events > 0);
    }

    #[test]
    fn keep_reports_retains_every_seed_in_order() {
        let s = RingScenario::default();
        let cfg = CampaignConfig {
            seeds: 4,
            base_seed: 9,
            artifact_dir: None,
            keep_reports: true,
            ..CampaignConfig::default()
        };
        let out = run_campaign(&s, &cfg);
        let seeds: Vec<u64> = out.reports.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![9, 10, 11, 12]);
        // Off by default: nothing retained.
        let out = run_campaign(
            &s,
            &CampaignConfig {
                seeds: 2,
                artifact_dir: None,
                ..CampaignConfig::default()
            },
        );
        assert!(out.reports.is_empty());
    }

    #[test]
    fn failing_campaign_writes_shrunk_artifact_and_replays() {
        let s = RingScenario::default();
        let dir = tmpdir("artifact");
        // Inject an unhealed partition plus irrelevant noise faults; the
        // shrinker should strip the noise.
        let others: Vec<u32> = (0..8u32).filter(|&i| i != 3).collect();
        let plan = FaultPlan::none()
            .crash(5, 400)
            .restart(5, 800)
            .partition(&[3], &others, 0, None)
            .loss(0.02, 100, 300);
        let cfg = CampaignConfig {
            seeds: 2,
            base_seed: 40,
            plan_override: Some(plan.clone()),
            artifact_dir: Some(dir.clone()),
            ..CampaignConfig::default()
        };
        let out = run_campaign(&s, &cfg);
        assert_eq!(out.failures.len(), 2);
        let failure = &out.failures[0];
        // Shrunk to just the partition.
        assert_eq!(failure.shrunk_plan.len(), 1);
        assert!(failure.shrunk_plan.is_subset_of(&plan));
        assert!(failure.shrunk_report.violated());
        // Artifact exists, parses, and replays to the same violation.
        let path = failure.artifact.clone().expect("artifact written");
        let artifact = read_artifact(&path).expect("parse artifact");
        assert_eq!(artifact.seed, failure.report.seed);
        assert_eq!(artifact.plan, plan);
        let replayed = replay_artifact(&s, &artifact).expect("replay reproduces");
        assert_eq!(replayed.fingerprint, artifact.fingerprint);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_detects_non_reproduction() {
        let s = RingScenario::default();
        let artifact = Artifact {
            scenario: "ring".into(),
            seed: 5,
            plan: FaultPlan::none(), // fault-free: cannot violate
            shrunk_plan: FaultPlan::none(),
            failing_oracles: vec!["ring.heartbeat_connectivity".into()],
            fingerprint: 0,
            provenance: Vec::new(),
            spans_recorded: 0,
            spans_evicted: 0,
        };
        match replay_artifact(&s, &artifact) {
            Err(ReplayError::NotReproduced { expected, got }) => {
                assert_eq!(expected.len(), 1);
                assert!(got.is_empty());
            }
            other => panic!("expected NotReproduced, got {other:?}"),
        }
    }

    #[test]
    fn failure_artifacts_embed_a_blameable_provenance_tail() {
        use cb_trace::{blame, SpanKind};
        let s = RingScenario::default();
        let others: Vec<u32> = (0..8u32).filter(|&i| i != 3).collect();
        let plan = FaultPlan::none().partition(&[3], &others, 0, None);
        let dir = tmpdir("provenance");
        let cfg = CampaignConfig {
            seeds: 1,
            base_seed: 40,
            plan_override: Some(plan),
            artifact_dir: Some(dir.clone()),
            ..CampaignConfig::default()
        };
        let out = run_campaign(&s, &cfg);
        assert_eq!(out.failures.len(), 1);
        let path = out.failures[0].artifact.clone().expect("artifact written");
        let artifact = read_artifact(&path).expect("parse artifact");
        // The tail is present and carries a synthesised violation span.
        assert!(!artifact.provenance.is_empty());
        let violation = artifact
            .provenance
            .iter()
            .find(|s| s.kind == SpanKind::Violation)
            .expect("violation span embedded");
        assert_eq!(violation.id.node, u32::MAX);
        assert!(!violation.parents.is_empty());
        // Blame from the violation walks a non-trivial causal chain.
        let chain = blame(&artifact.provenance, violation.id).expect("violation resolvable");
        assert!(chain.chain.len() > 1, "blame chain is only the violation");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_artifact_rejects_garbage() {
        let dir = tmpdir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            read_artifact(&path),
            Err(ReplayError::Malformed(_))
        ));
        std::fs::write(&path, "{\"schema\": \"other/v9\"}").unwrap();
        assert!(matches!(
            read_artifact(&path),
            Err(ReplayError::Malformed(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shrink_preserves_violation_and_subset() {
        let s = RingScenario::default();
        let others: Vec<u32> = (0..8u32).filter(|&i| i != 2).collect();
        let plan = FaultPlan::none()
            .loss(0.1, 0, 500)
            .partition(&[2], &others, 0, None)
            .crash(6, 900)
            .restart(6, 1200);
        let report = s.run(77, &plan);
        assert!(report.violated());
        let (shrunk, shrunk_report) = shrink_plan(&s, 77, &plan, &report);
        assert!(shrunk.is_subset_of(&plan));
        assert!(shrunk_report.violated());
        assert!(shrunk.len() <= plan.len());
        // Dropping anything further breaks reproduction.
        for i in 0..shrunk.len() {
            let candidate = shrunk.without(i);
            let r = s.run(77, &candidate);
            assert!(
                !same_violation(&report, &r),
                "shrunk plan not minimal: could drop fault {i}"
            );
        }
    }
}
