//! Overload-survival oracles for open-loop workload arms.
//!
//! Both read the run's merged fleet telemetry (the registry a campaign
//! embeds in its artifact), so they apply to any scenario that counts the
//! `workload.*` family and runs health-aware resolvers:
//!
//! * [`goodput_floor`] — shedding load is only acceptable if the fleet
//!   keeps *serving*: successful throughput must not collapse below a
//!   configured fraction of offered load.
//! * [`metastability`] — the retry-storm / congestion-collapse detector:
//!   once offered load is gone, the fleet must return to Healthy within a
//!   bounded window. A governor still degraded at the horizon means the
//!   system sustains its own overload (classic metastable failure).

use crate::oracle::OracleVerdict;
use cb_simnet::time::{SimDuration, SimTime};
use cb_telemetry::{keys, Registry};

/// Name of the goodput-floor oracle.
pub const GOODPUT_ORACLE: &str = "workload.goodput_floor";
/// Name of the metastability oracle.
pub const METASTABLE_ORACLE: &str = "workload.metastable";

/// Served throughput must stay at or above `floor * offered`. Reads the
/// fleet-summed `workload.served` / `workload.offered` counters.
pub fn goodput_floor(fleet: &Registry, floor: f64) -> OracleVerdict {
    let offered = fleet.counter(keys::WORKLOAD_OFFERED);
    let served = fleet.counter(keys::WORKLOAD_SERVED);
    if offered == 0 {
        return OracleVerdict::pass(GOODPUT_ORACLE, "no offered load");
    }
    let frac = served as f64 / offered as f64;
    OracleVerdict::check(
        GOODPUT_ORACLE,
        frac >= floor,
        format!("served {served}/{offered} offered = {frac:.3} (floor {floor:.2})"),
    )
}

/// After the overload source ends at `quiet_after`, the fleet must be back
/// to Healthy within `recovery_window`. The check reads the merged
/// `core.governor.rung` gauge — fleet merge keeps the *max*, i.e. the
/// worst node's final health — plus the time-in-state histograms for the
/// failure detail. `horizon` is the run's end time; the run must extend
/// past the recovery deadline for the verdict to be meaningful.
pub fn metastability(
    fleet: &Registry,
    quiet_after: SimTime,
    recovery_window: SimDuration,
    horizon: SimTime,
) -> OracleVerdict {
    let deadline = quiet_after.saturating_add(recovery_window);
    if horizon < deadline {
        return OracleVerdict::pass(
            METASTABLE_ORACLE,
            format!("horizon {horizon} ends before recovery deadline {deadline}; not judged"),
        );
    }
    let rung = fleet.gauge(keys::CORE_GOVERNOR_RUNG);
    let survival_ns = fleet
        .hist(keys::CORE_GOVERNOR_SURVIVAL_NS)
        .map(|h| h.max())
        .unwrap_or(0);
    OracleVerdict::check(
        METASTABLE_ORACLE,
        rung == 0,
        format!(
            "fleet governor rung {rung} at horizon {horizon} \
             ({recovery_window} after load removal at {quiet_after}; \
             worst node spent {survival_ns} sim-ns in Survival)"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(offered: u64, served: u64, rung: i64) -> Registry {
        let mut reg = Registry::new();
        keys::preregister_standard(&mut reg);
        reg.set_counter(keys::WORKLOAD_OFFERED, offered);
        reg.set_counter(keys::WORKLOAD_SERVED, served);
        reg.gauge_set(keys::CORE_GOVERNOR_RUNG, rung);
        reg
    }

    #[test]
    fn goodput_floor_passes_above_and_fails_below() {
        assert!(goodput_floor(&reg_with(1000, 600, 0), 0.5).passed);
        assert!(!goodput_floor(&reg_with(1000, 100, 0), 0.5).passed);
        assert!(goodput_floor(&reg_with(0, 0, 0), 0.5).passed, "vacuous");
    }

    #[test]
    fn metastability_fires_only_when_the_fleet_stays_degraded() {
        let quiet = SimTime::from_secs(70);
        let window = SimDuration::from_secs(30);
        let horizon = SimTime::from_secs(180);
        assert!(metastability(&reg_with(1, 1, 0), quiet, window, horizon).passed);
        let v = metastability(&reg_with(1, 1, 2), quiet, window, horizon);
        assert!(!v.passed);
        assert!(v.detail.contains("rung 2"), "{}", v.detail);
        // Too-short runs refuse to judge.
        assert!(metastability(&reg_with(1, 1, 2), quiet, window, SimTime::from_secs(80)).passed);
    }
}
