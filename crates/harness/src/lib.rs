//! # cb-harness — deterministic multi-seed simulation campaigns
//!
//! The paper's pitch is that a single development substrate — deployment,
//! simulation, model checking — makes distributed systems debuggable. This
//! crate is the *campaign* layer on top of the `cb-simnet` simulator: run a
//! protocol scenario across many seeds in parallel, compose fault schedules
//! declaratively, check invariant oracles, and when something breaks, leave
//! behind everything needed to debug it:
//!
//! * a **JSON failure artifact** (seed, fault plan, oracle verdicts, the
//!   last trace window, metrics) under `results/campaigns/`;
//! * an **exact replay** path — the artifact's `seed` + `plan` spec string
//!   rebuild the identical run, fingerprint and all;
//! * a **shrunk plan** — the greedy shrinker drops faults one at a time
//!   while the violation persists, so the artifact names a minimal repro.
//!
//! Layout:
//!
//! * [`plan`] — declarative [`FaultPlan`]s (crash/restart, partitions,
//!   loss windows, churn) with a round-trippable spec string.
//! * [`oracle`] — the [`Oracle`] trait and [`OracleVerdict`]s.
//! * [`linearizability`] — per-key WGL-style history checking (plus the
//!   brute-force ground truth it is differentially tested against).
//! * [`scenario`] — the [`Scenario`] trait and per-run [`RunReport`]s.
//! * [`campaign`] — the parallel sweep, shrinking, artifacts, replay.
//! * [`json`] — a dependency-free JSON reader/writer for artifacts.
//! * [`toy`] — a tiny ring-heartbeat scenario used by the harness's own
//!   tests (and handy as an implementation template).
//!
//! # Quick example
//!
//! ```
//! use cb_harness::prelude::*;
//! use cb_harness::toy::RingScenario;
//!
//! let scenario = RingScenario::default();
//! let cfg = CampaignConfig {
//!     seeds: 4,
//!     artifact_dir: None, // keep doctests filesystem-clean
//!     ..CampaignConfig::default()
//! };
//! let outcome = run_campaign(&scenario, &cfg);
//! assert!(outcome.all_passed(), "{}", outcome.summary_line());
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod json;
pub mod linearizability;
pub mod oracle;
pub mod overload;
pub mod plan;
pub mod provenance;
pub mod scenario;
pub mod telemetry;
pub mod toy;

pub use campaign::{
    artifact_json, read_artifact, replay_artifact, run_campaign, shrink_plan, write_artifact,
    Artifact, CampaignConfig, CampaignOutcome, Failure, ReplayError, ARTIFACT_SCHEMA,
};
pub use json::Json;
pub use linearizability::{
    brute_force_check, check_history, linearizability_verdict, synthetic_history, wgl_check,
    LinViolation, Op, OpKind, INIT_VALUE,
};
pub use oracle::{check_all, Oracle, OracleVerdict};
pub use plan::{Fault, FaultPlan, PlanParseError};
pub use provenance::{parse_provenance, provenance_json, span_from_json, span_json};
pub use scenario::{trace_tail, RunReport, Scenario};
pub use telemetry::telemetry_json;

/// Everything most campaign authors need, in one import.
pub mod prelude {
    pub use crate::campaign::{
        read_artifact, replay_artifact, run_campaign, shrink_plan, CampaignConfig, CampaignOutcome,
        Failure,
    };
    pub use crate::json::Json;
    pub use crate::linearizability::{linearizability_verdict, Op, OpKind};
    pub use crate::oracle::{Oracle, OracleVerdict};
    pub use crate::plan::{Fault, FaultPlan};
    pub use crate::scenario::{RunReport, Scenario};
    pub use crate::telemetry::telemetry_json;
    pub use cb_telemetry::{Registry, TelemetrySummary};
}
