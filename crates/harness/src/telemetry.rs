//! Rendering a [`Registry`] into the artifact [`Json`] type.
//!
//! Every campaign run embeds a `telemetry` section in its JSON artifact.
//! The rendering is **schema-stable**: keys come out in sorted order (the
//! registry's maps are sorted) and the standard schema is pre-registered,
//! so two runs of the same scenario always export the same key set.
//!
//! Wall-clock metrics (names containing [`cb_telemetry::WALL_MARKER`]) are
//! exported with their real, nondeterministic values; determinism checks
//! must compare `telemetry_json(&reg.masked())` instead, which blanks the
//! wall-clock payloads while keeping the keys.

use crate::json::Json;
use cb_telemetry::{summary, Registry};

/// Renders a registry as a JSON object with stable (sorted) key order.
///
/// Layout:
///
/// ```text
/// {
///   "counters":   { "<name>": <u64>, ... },
///   "gauges":     { "<name>": <i64>, ... },
///   "histograms": { "<name>": {"count":n,"min":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..,
///                               "buckets":[[bucket,count],...]}, ... },
///   "summary":    { "decisions":.., "decision_p50_sim_us":.., "decision_p99_sim_us":..,
///                   "cache_hit_rate":..|null, "states_per_decision":..,
///                   "states_visited":.., "dedup_ratio":..|null }
/// }
/// ```
///
/// Counter/gauge values ride the f64-backed JSON number type; the standard
/// schema's values stay far below the 2^53 precision cliff.
pub fn telemetry_json(reg: &Registry) -> Json {
    let mut counters = Json::obj();
    for (k, v) in reg.counters() {
        counters.set(k, v);
    }
    let mut gauges = Json::obj();
    for (k, v) in reg.gauges() {
        gauges.set(k, Json::Num(v as f64));
    }
    let mut hists = Json::obj();
    for (k, h) in reg.hists() {
        let o = if h.is_empty() {
            // An empty histogram has no min/max; export just the count so
            // the schema stays parseable without sentinel values.
            Json::obj().with("count", 0u64)
        } else {
            // Raw log-bucket distribution rides along as [bucket, count]
            // pairs so corpus ingestion can compare whole distributions,
            // not just the summary quantiles.
            let buckets: Vec<Json> = h
                .buckets()
                .map(|(b, c)| Json::Arr(vec![Json::Num(b as f64), Json::Num(c as f64)]))
                .collect();
            Json::obj()
                .with("count", h.count())
                .with("min", h.min())
                .with("max", h.max())
                .with("mean", h.mean())
                .with("p50", h.quantile(0.5))
                .with("p90", h.quantile(0.9))
                .with("p99", h.quantile(0.99))
                .with("buckets", buckets)
        };
        hists.set(k, o);
    }
    let digest = summary::summarize(reg);
    let opt = |r: Option<f64>| r.map(Json::Num).unwrap_or(Json::Null);
    let summary_obj = Json::obj()
        .with("decisions", digest.decisions)
        .with("decision_p50_sim_us", digest.decision_p50_sim_us)
        .with("decision_p99_sim_us", digest.decision_p99_sim_us)
        .with("cache_hit_rate", opt(digest.cache_hit_rate))
        .with("states_per_decision", digest.states_per_decision)
        .with("states_visited", digest.states_visited)
        .with("dedup_ratio", opt(digest.dedup_ratio));
    Json::obj()
        .with("counters", counters)
        .with("gauges", gauges)
        .with("histograms", hists)
        .with("summary", summary_obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_telemetry::keys;

    fn sample() -> Registry {
        let mut reg = Registry::new();
        keys::preregister_standard(&mut reg);
        reg.add(keys::CORE_DECISIONS_TOTAL, 4);
        reg.add(keys::CORE_STATES_EXPLORED, 40);
        for v in [1u64, 2, 3, 100] {
            reg.record(keys::CORE_DECISION_LATENCY_SIM_US, v);
        }
        reg.record(keys::CORE_DECISION_LATENCY_WALL_NS, 123_456);
        reg
    }

    #[test]
    fn sections_and_summary_are_present() {
        let j = telemetry_json(&sample());
        let counters = j.get("counters").expect("counters");
        assert_eq!(
            counters
                .get(keys::CORE_DECISIONS_TOTAL)
                .and_then(Json::as_u64),
            Some(4)
        );
        let hist = j
            .get("histograms")
            .and_then(|h| h.get(keys::CORE_DECISION_LATENCY_SIM_US))
            .expect("latency hist");
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(4));
        assert!(hist.get("p99").and_then(Json::as_u64).unwrap() >= 3);
        let buckets = hist
            .get("buckets")
            .and_then(Json::as_array)
            .expect("raw buckets exported");
        let total: u64 = buckets
            .iter()
            .map(|pair| {
                pair.as_array()
                    .and_then(|p| p[1].as_u64())
                    .expect("[bucket, count] pair")
            })
            .sum();
        assert_eq!(total, 4);
        let s = j.get("summary").expect("summary");
        assert_eq!(s.get("decisions").and_then(Json::as_u64), Some(4));
        assert_eq!(
            s.get("states_per_decision").and_then(Json::as_f64),
            Some(10.0)
        );
        assert_eq!(s.get("cache_hit_rate"), Some(&Json::Null));
    }

    #[test]
    fn empty_histograms_export_a_bare_count() {
        let j = telemetry_json(&sample());
        // net.delivery_latency_us is pre-registered but never recorded.
        let h = j
            .get("histograms")
            .and_then(|h| h.get(keys::NET_DELIVERY_LATENCY_US))
            .expect("empty hist present (schema stability)");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(0));
        assert!(h.get("min").is_none());
    }

    #[test]
    fn masked_rendering_is_stable_across_wall_noise() {
        let a = sample();
        let mut b = sample();
        b.record(keys::CORE_DECISION_LATENCY_WALL_NS, 999);
        assert_ne!(
            telemetry_json(&a).to_string_compact(),
            telemetry_json(&b).to_string_compact()
        );
        assert_eq!(
            telemetry_json(&a.masked()).to_string_compact(),
            telemetry_json(&b.masked()).to_string_compact()
        );
        // Masking keeps the key set: the wall histogram is still exported.
        let masked = telemetry_json(&a.masked());
        let h = masked
            .get("histograms")
            .and_then(|h| h.get(keys::CORE_DECISION_LATENCY_WALL_NS))
            .expect("wall hist key survives masking");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn round_trips_through_the_parser() {
        let j = telemetry_json(&sample());
        let text = j.to_string_pretty();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, j);
    }
}
