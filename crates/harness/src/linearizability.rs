//! Per-key linearizability checking over client-observed operation logs.
//!
//! A replicated KV scenario records, on each client, every operation it
//! issued: the invocation time, the response time (or "still pending at the
//! horizon"), and — for reads — the value it observed. After the run the
//! campaign harness concatenates those per-client logs into one history and
//! asks: *is there a linearization?* I.e. a total order of the operations
//! that (a) extends the real-time precedence order (if op `p` responded
//! before op `o` was invoked, `p` comes first) and (b) makes every read
//! return the most recently written value (registers start at
//! [`INIT_VALUE`]).
//!
//! Keys are independent registers, so the history is split per key and each
//! key is checked on its own — that keeps the state space proportional to
//! per-key concurrency rather than fleet-wide load.
//!
//! Two checkers live here:
//!
//! * [`wgl_check`] — a Wing–Gong / WGL-style memoized search. States are
//!   `(set of linearized ops, current register value)` pairs; an op is a
//!   candidate at a state iff every operation that *must* precede it (in
//!   real time) is already linearized. Memoizing visited states keeps the
//!   cost proportional to reachable configurations — bounded by per-key
//!   *concurrency*, not history length — instead of `n!`.
//! * [`brute_force_check`] — explicit enumeration of every permutation of
//!   every admissible subset. Factorial, only usable on tiny histories, and
//!   deliberately written with none of the WGL machinery: it is the
//!   differential ground truth the property tests compare against.
//!
//! Pending operations (no response by the horizon) follow the standard
//! completion rules: a pending *write* may or may not have taken effect, so
//! the checkers are free to include it anywhere after its invocation or to
//! drop it entirely; a pending *read* observed nothing and is dropped up
//! front.

use crate::oracle::OracleVerdict;
use std::collections::{BTreeMap, HashSet};

/// The value every register holds before its first write.
pub const INIT_VALUE: u64 = 0;

/// What an operation did, and what the client observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A write of the given value.
    Write(u64),
    /// A read; the payload is the value the client observed. Ignored (and
    /// irrelevant) when the read is still pending at the horizon.
    Read(u64),
}

/// One client-observed operation against one key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Op {
    /// Issuing client. Bookkeeping for artifacts; the checker itself is
    /// client-agnostic (real-time order is all that matters).
    pub client: u64,
    /// The key operated on. Histories are checked per key.
    pub key: u64,
    /// Operation kind plus observed value.
    pub kind: OpKind,
    /// Invocation time in nanoseconds on the sim clock.
    pub invoke_ns: u64,
    /// Response time; `None` means still pending when the run ended.
    pub respond_ns: Option<u64>,
}

impl Op {
    /// A completed write.
    pub fn write(client: u64, key: u64, value: u64, invoke_ns: u64, respond_ns: u64) -> Self {
        Op {
            client,
            key,
            kind: OpKind::Write(value),
            invoke_ns,
            respond_ns: Some(respond_ns),
        }
    }

    /// A completed read that observed `value`.
    pub fn read(client: u64, key: u64, value: u64, invoke_ns: u64, respond_ns: u64) -> Self {
        Op {
            client,
            key,
            kind: OpKind::Read(value),
            invoke_ns,
            respond_ns: Some(respond_ns),
        }
    }

    /// A write that never got a response (may or may not have taken effect).
    pub fn pending_write(client: u64, key: u64, value: u64, invoke_ns: u64) -> Self {
        Op {
            client,
            key,
            kind: OpKind::Write(value),
            invoke_ns,
            respond_ns: None,
        }
    }

    /// A read that never got a response (observed nothing; always dropped).
    pub fn pending_read(client: u64, key: u64, invoke_ns: u64) -> Self {
        Op {
            client,
            key,
            kind: OpKind::Read(0),
            invoke_ns,
            respond_ns: None,
        }
    }

    fn is_pending_read(&self) -> bool {
        self.respond_ns.is_none() && matches!(self.kind, OpKind::Read(_))
    }
}

// ---------------------------------------------------------------------------
// Multi-word bitmask helpers (histories can exceed 64 ops per key).
// ---------------------------------------------------------------------------

fn mask_words(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

fn set_bit(mask: &mut [u64], i: usize) {
    mask[i / 64] |= 1 << (i % 64);
}

fn get_bit(mask: &[u64], i: usize) -> bool {
    mask[i / 64] & (1 << (i % 64)) != 0
}

/// `a ⊆ b`?
fn subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & !y == 0)
}

/// The WGL-style memoized linearizability check, treating the whole input as
/// operations on **one** register (callers split per key first; see
/// [`check_history`]). Returns `true` iff a linearization exists.
pub fn wgl_check(history: &[Op]) -> bool {
    let ops: Vec<&Op> = history.iter().filter(|o| !o.is_pending_read()).collect();
    let n = ops.len();
    if n == 0 {
        return true;
    }
    let words = mask_words(n);

    // preceders[i] = ops that responded before op i was invoked; all of them
    // must be linearized before i may be.
    let mut preceders = vec![vec![0u64; words]; n];
    let mut complete = vec![0u64; words];
    for (i, op) in ops.iter().enumerate() {
        if op.respond_ns.is_some() {
            set_bit(&mut complete, i);
        }
        for (j, other) in ops.iter().enumerate() {
            if i != j && other.respond_ns.is_some_and(|r| r < op.invoke_ns) {
                set_bit(&mut preceders[i], j);
            }
        }
    }

    // DFS over (linearized-set, register value) configurations. Accept once
    // every *complete* op is linearized — leftover pending writes are the
    // "never took effect" completion.
    let mut seen: HashSet<(Vec<u64>, u64)> = HashSet::new();
    let mut stack: Vec<(Vec<u64>, u64)> = vec![(vec![0u64; words], INIT_VALUE)];
    while let Some((mask, value)) = stack.pop() {
        if subset(&complete, &mask) {
            return true;
        }
        if !seen.insert((mask.clone(), value)) {
            continue;
        }
        for (i, op) in ops.iter().enumerate() {
            if get_bit(&mask, i) || !subset(&preceders[i], &mask) {
                continue;
            }
            match op.kind {
                OpKind::Read(v) => {
                    if v == value {
                        let mut next = mask.clone();
                        set_bit(&mut next, i);
                        stack.push((next, value));
                    }
                }
                OpKind::Write(v) => {
                    let mut next = mask.clone();
                    set_bit(&mut next, i);
                    stack.push((next, v));
                }
            }
        }
    }
    false
}

/// Exhaustive single-register linearizability check: every permutation of
/// every admissible subset (all complete ops, any subset of pending writes).
/// Factorial — panics on more than 8 effective ops. Ground truth for the
/// differential property tests; never use it on real campaign histories.
pub fn brute_force_check(history: &[Op]) -> bool {
    let ops: Vec<&Op> = history.iter().filter(|o| !o.is_pending_read()).collect();
    let n = ops.len();
    assert!(n <= 8, "brute-force checker is factorial; got {n} ops");
    if n == 0 {
        return true;
    }
    let pending: Vec<usize> = (0..n).filter(|&i| ops[i].respond_ns.is_none()).collect();
    let required: Vec<usize> = (0..n).filter(|&i| ops[i].respond_ns.is_some()).collect();

    for choice in 0u32..(1 << pending.len()) {
        let mut chosen = required.clone();
        for (bit, &idx) in pending.iter().enumerate() {
            if choice & (1 << bit) != 0 {
                chosen.push(idx);
            }
        }
        if any_valid_permutation(&ops, &mut chosen, 0) {
            return true;
        }
    }
    false
}

/// Heap's-style in-place permutation search over `chosen[at..]`, validating
/// the full order once built.
fn any_valid_permutation(ops: &[&Op], chosen: &mut [usize], at: usize) -> bool {
    if at == chosen.len() {
        return permutation_is_linearization(ops, chosen);
    }
    for i in at..chosen.len() {
        chosen.swap(at, i);
        if any_valid_permutation(ops, chosen, at + 1) {
            chosen.swap(at, i);
            return true;
        }
        chosen.swap(at, i);
    }
    false
}

fn permutation_is_linearization(ops: &[&Op], order: &[usize]) -> bool {
    // Real-time precedence: nothing placed later may have responded before
    // an earlier-placed op was invoked.
    for (pos, &i) in order.iter().enumerate() {
        for &j in &order[pos + 1..] {
            if ops[j].respond_ns.is_some_and(|r| r < ops[i].invoke_ns) {
                return false;
            }
        }
    }
    // Register semantics from INIT_VALUE.
    let mut value = INIT_VALUE;
    for &i in order {
        match ops[i].kind {
            OpKind::Read(v) => {
                if v != value {
                    return false;
                }
            }
            OpKind::Write(v) => value = v,
        }
    }
    true
}

/// Splits a history per key and WGL-checks each key independently. Returns
/// the first violating key (with its op count) or `Ok(())`.
pub fn check_history(history: &[Op]) -> Result<(), LinViolation> {
    let mut by_key: BTreeMap<u64, Vec<Op>> = BTreeMap::new();
    for op in history {
        by_key.entry(op.key).or_default().push(*op);
    }
    for (key, mut ops) in by_key {
        ops.sort_by_key(|o| (o.invoke_ns, o.client));
        if !wgl_check(&ops) {
            return Err(LinViolation { key, ops });
        }
    }
    Ok(())
}

/// A per-key linearizability violation: no valid linearization of this
/// key's operations exists.
#[derive(Clone, Debug)]
pub struct LinViolation {
    /// The violating key.
    pub key: u64,
    /// Every operation against that key, sorted by invocation time.
    pub ops: Vec<Op>,
}

impl LinViolation {
    /// A human-readable digest for failure artifacts: the key, op counts,
    /// and the tail of the history (where the contradiction usually lives).
    pub fn detail(&self) -> String {
        let reads = self
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Read(_)))
            .count();
        let writes = self.ops.len() - reads;
        let tail: Vec<String> = self
            .ops
            .iter()
            .rev()
            .take(4)
            .rev()
            .map(|o| {
                let span = match o.respond_ns {
                    Some(r) => format!("[{}..{}]", o.invoke_ns, r),
                    None => format!("[{}..pending]", o.invoke_ns),
                };
                match o.kind {
                    OpKind::Write(v) => format!("c{} W({v}){span}", o.client),
                    OpKind::Read(v) => format!("c{} R={v}{span}", o.client),
                }
            })
            .collect();
        format!(
            "key {}: no linearization of {} ops ({reads} reads, {writes} writes); tail: {}",
            self.key,
            self.ops.len(),
            tail.join(" ")
        )
    }
}

/// Runs the per-key check and wraps the outcome as an [`OracleVerdict`]
/// under the given oracle name.
pub fn linearizability_verdict(name: &str, history: &[Op]) -> OracleVerdict {
    let keys = history
        .iter()
        .map(|o| o.key)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    match check_history(history) {
        Ok(()) => OracleVerdict::pass(
            name,
            format!(
                "{} ops over {keys} keys linearizable per key",
                history.len()
            ),
        ),
        Err(v) => OracleVerdict::fail(name, v.detail()),
    }
}

/// Generates a linearizable-by-construction history of `n_ops` operations:
/// each op is assigned a strictly increasing linearization point and an
/// invocation/response window jittered around it, so neighbouring ops
/// overlap (real concurrency) while reads observe the register value at
/// their linearization point. Used by the `lincheck` micro-benchmark and by
/// scale tests; tamper with a read's value to get a violating history of
/// the same shape.
pub fn synthetic_history(n_ops: usize, n_clients: u64, n_keys: u64, seed: u64) -> Vec<Op> {
    let mut state = seed;
    let mut next = move || {
        // splitmix64 — self-contained so the generator has no deps.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut current: BTreeMap<u64, u64> = BTreeMap::new();
    let mut out = Vec::with_capacity(n_ops);
    for i in 0..n_ops {
        // Linearization points 10ns apart with <10ns jitter stay strictly
        // increasing; ±40ns windows give ~8-way concurrency.
        let lin = (i as u64) * 10 + next() % 10;
        let invoke_ns = lin.saturating_sub(next() % 40);
        let pending = next() % 50 == 0;
        let respond_ns = if pending {
            None
        } else {
            Some(lin + 1 + next() % 40)
        };
        let key = next() % n_keys.max(1);
        let client = next() % n_clients.max(1);
        let kind = if next() % 2 == 0 {
            let value = i as u64 + 1;
            current.insert(key, value);
            OpKind::Write(value)
        } else {
            // A pending read is dropped by the checkers, so its observed
            // value does not matter; record the register value anyway.
            OpKind::Read(*current.get(&key).unwrap_or(&INIT_VALUE))
        };
        out.push(Op {
            client,
            key,
            kind,
            invoke_ns,
            respond_ns,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_is_linearizable() {
        assert!(wgl_check(&[]));
        assert!(brute_force_check(&[]));
        assert!(check_history(&[]).is_ok());
    }

    #[test]
    fn sequential_write_read_passes() {
        let h = [Op::write(0, 1, 7, 0, 10), Op::read(1, 1, 7, 20, 30)];
        assert!(wgl_check(&h));
        assert!(brute_force_check(&h));
    }

    #[test]
    fn read_of_never_written_value_fails() {
        let h = [Op::write(0, 1, 7, 0, 10), Op::read(1, 1, 9, 20, 30)];
        assert!(!wgl_check(&h));
        assert!(!brute_force_check(&h));
    }

    #[test]
    fn stale_read_after_completed_write_fails() {
        // W(1) finished at 10ns; a read invoked at 20ns must not see the
        // initial value any more.
        let h = [
            Op::write(0, 1, 1, 0, 10),
            Op::read(1, 1, INIT_VALUE, 20, 30),
        ];
        assert!(!wgl_check(&h));
        assert!(!brute_force_check(&h));
    }

    #[test]
    fn concurrent_read_may_see_either_side_of_a_write() {
        for observed in [INIT_VALUE, 5] {
            let h = [Op::write(0, 1, 5, 10, 30), Op::read(1, 1, observed, 15, 25)];
            assert!(wgl_check(&h), "observed={observed}");
            assert!(brute_force_check(&h), "observed={observed}");
        }
    }

    #[test]
    fn write_order_fixed_by_real_time_fails_stale_read() {
        // W(1) then W(2) strictly after; a later read must see 2 (or a
        // newer write), never 1 again.
        let h = [
            Op::write(0, 1, 1, 0, 5),
            Op::write(0, 1, 2, 10, 15),
            Op::read(1, 1, 1, 20, 25),
        ];
        assert!(!wgl_check(&h));
        assert!(!brute_force_check(&h));
    }

    #[test]
    fn pending_write_may_take_effect_or_not() {
        // The pending W(7) can linearize before the read...
        let seen = [Op::pending_write(0, 1, 7, 10), Op::read(1, 1, 7, 20, 30)];
        assert!(wgl_check(&seen));
        assert!(brute_force_check(&seen));
        // ...or never happen at all.
        let unseen = [
            Op::pending_write(0, 1, 7, 10),
            Op::read(1, 1, INIT_VALUE, 20, 30),
        ];
        assert!(wgl_check(&unseen));
        assert!(brute_force_check(&unseen));
    }

    #[test]
    fn observed_pending_write_cannot_unhappen() {
        // Once a read observes the pending write, a later read cannot flip
        // back to the initial value.
        let h = [
            Op::pending_write(0, 1, 7, 10),
            Op::read(1, 1, 7, 20, 30),
            Op::read(1, 1, INIT_VALUE, 40, 50),
        ];
        assert!(!wgl_check(&h));
        assert!(!brute_force_check(&h));
    }

    #[test]
    fn pending_reads_are_ignored() {
        let h = [Op::write(0, 1, 3, 0, 10), Op::pending_read(1, 1, 20)];
        assert!(wgl_check(&h));
        assert!(brute_force_check(&h));
    }

    #[test]
    fn keys_are_independent_registers() {
        // Interleaved per-key-sequential traffic on two keys; each key is
        // fine on its own.
        let h = [
            Op::write(0, 1, 1, 0, 10),
            Op::write(0, 2, 9, 5, 15),
            Op::read(1, 1, 1, 20, 30),
            Op::read(1, 2, 9, 25, 35),
        ];
        assert!(check_history(&h).is_ok());
        assert!(linearizability_verdict("kv.linearizable", &h).passed);
    }

    #[test]
    fn violation_names_the_bad_key() {
        let h = [
            Op::write(0, 1, 1, 0, 10),
            Op::read(1, 1, 1, 20, 30),
            Op::write(0, 2, 5, 0, 10),
            Op::read(1, 2, INIT_VALUE, 20, 30),
        ];
        let err = check_history(&h).unwrap_err();
        assert_eq!(err.key, 2);
        let verdict = linearizability_verdict("kv.linearizable", &h);
        assert!(!verdict.passed);
        assert!(verdict.detail.contains("key 2"), "{}", verdict.detail);
    }

    #[test]
    fn synthetic_history_is_linearizable_and_tampering_breaks_it() {
        let mut h = synthetic_history(400, 8, 1, 42);
        assert!(check_history(&h).is_ok());
        // Flip one completed read to a value never written anywhere.
        let victim = h
            .iter()
            .position(|o| o.respond_ns.is_some() && matches!(o.kind, OpKind::Read(_)))
            .expect("history has a completed read");
        h[victim].kind = OpKind::Read(u64::MAX);
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn multiword_masks_work_past_64_ops() {
        // >64 sequential ops on one key force the two-word mask path.
        let mut h = Vec::new();
        for i in 0..80u64 {
            h.push(Op::write(0, 1, i + 1, i * 20, i * 20 + 5));
            h.push(Op::read(1, 1, i + 1, i * 20 + 10, i * 20 + 15));
        }
        assert!(wgl_check(&h));
        let last = h.len() - 1;
        h[last].kind = OpKind::Read(1); // stale by 79 writes
        assert!(!wgl_check(&h));
    }
}
