//! The scenario abstraction and per-run reports.
//!
//! A [`Scenario`] packages one protocol experiment — topology construction,
//! actor wiring, workload, fault application, and invariant oracles — behind
//! a uniform interface so the campaign runner can sweep seeds over any of
//! them. App crates (randtree, gossip, paxos, dissem) implement this trait
//! in their `campaign` modules; the harness ships a toy scenario for its own
//! tests (see `toy.rs`).

use crate::json::Json;
use crate::oracle::OracleVerdict;
use crate::plan::FaultPlan;
use crate::provenance::{self, provenance_json};
use crate::telemetry::telemetry_json;
use cb_simnet::prelude::{Actor, MetricsSummary, Sim, SimTime};
use cb_telemetry::{keys, Registry};
use cb_trace::Span;

/// Everything the campaign runner keeps from one seed's run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// The seed the run used.
    pub seed: u64,
    /// The fault plan that was applied.
    pub plan: FaultPlan,
    /// Trace fingerprint at the end of the run — equal seeds and plans must
    /// produce equal fingerprints.
    pub fingerprint: u64,
    /// Total simulator events processed.
    pub events_processed: u64,
    /// Events still queued when the run stopped (nonzero = hit the horizon
    /// before quiescing).
    pub pending_events: usize,
    /// Sim clock when the run settled.
    pub end: SimTime,
    /// Aggregated transport metrics.
    pub msgs_sent: u64,
    /// Messages delivered.
    pub msgs_delivered: u64,
    /// Messages dropped.
    pub msgs_dropped: u64,
    /// Bytes handed to the transport.
    pub bytes_sent: u64,
    /// All oracle verdicts, scenario-specific first, generic last.
    pub verdicts: Vec<OracleVerdict>,
    /// The last few trace lines, captured only when a verdict failed.
    pub last_trace: Vec<String>,
    /// The flight-recorder tail: the last spans of every node's recorder,
    /// closed over retained causal parents, plus one synthesised
    /// `Violation` span per failing oracle. Deterministic except for each
    /// span's `wall_ns`.
    pub provenance: Vec<Span>,
    /// Total spans the fleet's recorders ever pushed.
    pub spans_recorded: u64,
    /// Spans evicted from the bounded rings (the tail may be incomplete
    /// when nonzero).
    pub spans_evicted: u64,
    /// Full telemetry registry for the run (standard schema pre-registered,
    /// `net.*` filled from the sim summary; runtime scenarios replace it
    /// with a fleet-wide registry via [`RunReport::with_telemetry`]).
    pub telemetry: Registry,
    /// The policy store this run recorded (scenarios running with
    /// `--record-policy` attach it via [`RunReport::with_policy`]); the
    /// campaign runner merges per-seed stores deterministically.
    pub policy: Option<cb_policy::PolicyStore>,
}

impl RunReport {
    /// How many trace lines a failing report embeds.
    pub const TRACE_WINDOW: usize = 40;

    /// Builds a report by inspecting a finished sim. `verdicts` should
    /// already contain the scenario-specific oracle results; this adds the
    /// generic quiescence oracle and snapshots metrics/trace.
    pub fn from_sim<A: Actor>(
        scenario: &str,
        seed: u64,
        plan: &FaultPlan,
        sim: &Sim<A>,
        horizon: SimTime,
        verdicts: Vec<OracleVerdict>,
    ) -> Self {
        Self::from_sim_quiescence(scenario, seed, plan, sim, horizon, verdicts, true)
    }

    /// [`RunReport::from_sim`] with the generic quiescence oracle made
    /// optional — periodic protocols (gossip rounds, heartbeats) never
    /// quiesce by design and pass `expect_quiescence = false`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_sim_quiescence<A: Actor>(
        scenario: &str,
        seed: u64,
        plan: &FaultPlan,
        sim: &Sim<A>,
        horizon: SimTime,
        mut verdicts: Vec<OracleVerdict>,
        expect_quiescence: bool,
    ) -> Self {
        let pending = sim.pending_events();
        if expect_quiescence {
            verdicts.push(OracleVerdict::check(
                "generic.quiescence",
                pending == 0,
                format!(
                    "{} events pending at horizon {} ms",
                    pending,
                    horizon.as_millis()
                ),
            ));
        }
        let summary: MetricsSummary = sim.summary();
        let mut telemetry = Registry::new();
        keys::preregister_standard(&mut telemetry);
        summary.record_into(&mut telemetry);
        let failed = verdicts.iter().any(|v| !v.passed);
        let last_trace = if failed {
            sim.trace()
                .last(Self::TRACE_WINDOW)
                .map(|r| format!("{r}"))
                .collect()
        } else {
            Vec::new()
        };
        // Decision provenance: the flight-recorder tail rides every report;
        // failing runs additionally get one Violation span per failing
        // oracle, anchored to the last span (and last decision) per node.
        let mut provenance = provenance::collect_tail(sim, provenance::TAIL_PER_NODE);
        if failed {
            let failing: Vec<(String, String)> = verdicts
                .iter()
                .filter(|v| !v.passed)
                .map(|v| (v.name.clone(), v.detail.clone()))
                .collect();
            provenance.extend(provenance::violation_spans(sim, &failing));
        }
        let (mut spans_recorded, mut spans_evicted) = (0u64, 0u64);
        for rec in sim.flight_recorders() {
            spans_recorded += rec.pushed();
            spans_evicted += rec.evicted();
        }
        telemetry.set_counter(keys::SIMNET_TRACE_EVICTED, sim.trace().evicted());
        telemetry.set_counter(keys::TRACE_SPANS_RECORDED, spans_recorded);
        telemetry.set_counter(keys::TRACE_SPANS_EVICTED, spans_evicted);
        RunReport {
            scenario: scenario.to_string(),
            seed,
            plan: plan.clone(),
            fingerprint: sim.trace().fingerprint(),
            events_processed: sim.events_processed(),
            pending_events: pending,
            end: sim.now(),
            msgs_sent: summary.msgs_sent,
            msgs_delivered: summary.msgs_delivered,
            msgs_dropped: summary.msgs_dropped,
            bytes_sent: summary.bytes_sent,
            verdicts,
            last_trace,
            provenance,
            spans_recorded,
            spans_evicted,
            telemetry,
            policy: None,
        }
    }

    /// Replaces the report's telemetry with a richer registry — typically
    /// [`cb_core::runtime::fleet_telemetry`]'s fleet-wide merge, which
    /// already contains the `net.*` metrics this report pre-filled (replace,
    /// not merge, so network counters are not double-counted).
    pub fn with_telemetry(mut self, telemetry: Registry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches the policy store the run recorded into.
    pub fn with_policy(mut self, policy: cb_policy::PolicyStore) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Whether any oracle failed.
    pub fn violated(&self) -> bool {
        self.verdicts.iter().any(|v| !v.passed)
    }

    /// Names of failing oracles.
    pub fn failing_oracles(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| !v.passed)
            .map(|v| v.name.as_str())
            .collect()
    }

    /// Serializes the report (used inside failure artifacts).
    pub fn to_json(&self) -> Json {
        let mut json = Json::obj()
            .with("scenario", self.scenario.as_str())
            // Decimal strings: u64 values survive the f64-backed JSON
            // number type only up to 2^53.
            .with("seed", self.seed.to_string())
            .with("plan", self.plan.to_spec().as_str())
            .with("fingerprint", self.fingerprint.to_string())
            .with("events_processed", self.events_processed)
            .with("pending_events", self.pending_events)
            .with("end_ms", self.end.as_millis())
            .with(
                "metrics",
                Json::obj()
                    .with("msgs_sent", self.msgs_sent)
                    .with("msgs_delivered", self.msgs_delivered)
                    .with("msgs_dropped", self.msgs_dropped)
                    .with("bytes_sent", self.bytes_sent),
            )
            .with("telemetry", telemetry_json(&self.telemetry))
            .with(
                "oracles",
                Json::Arr(
                    self.verdicts
                        .iter()
                        .map(|v| {
                            Json::obj()
                                .with("name", v.name.as_str())
                                .with("passed", v.passed)
                                .with("detail", v.detail.as_str())
                        })
                        .collect(),
                ),
            )
            .with("last_trace", self.last_trace.clone())
            .with(
                "provenance",
                provenance_json(
                    &self.provenance,
                    self.spans_recorded,
                    self.spans_evicted,
                    false,
                ),
            );
        if let Some(policy) = &self.policy {
            json = json.with("policy", policy_json(policy));
        }
        json
    }

    /// The `provenance` section with every span's wall clock blanked —
    /// byte-identical across replays of the same `(scenario, seed, plan)`.
    pub fn provenance_masked_json(&self) -> Json {
        provenance_json(
            &self.provenance,
            self.spans_recorded,
            self.spans_evicted,
            true,
        )
    }
}

/// One registered experiment the campaign runner can sweep.
///
/// Implementations must be deterministic: `run(seed, plan)` twice must
/// produce reports with identical fingerprints (the runner enforces this).
pub trait Scenario: Sync + Send {
    /// Short unique name used on the CLI and in artifact paths.
    fn name(&self) -> &'static str;

    /// How many hosts the scenario's topology has (lets callers build valid
    /// fault plans without constructing the scenario).
    fn node_count(&self) -> usize;

    /// The default fault plan for a given seed — what the campaign injects
    /// when the user does not supply an explicit plan.
    fn default_plan(&self, seed: u64) -> FaultPlan;

    /// Runs the scenario once under `plan` and reports.
    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport;
}

/// Schema tag of the `policy` section inside reports and artifacts.
pub const POLICY_SCHEMA: &str = "cb-policy/v1";

/// Serializes a recorded policy store's summary: scenario, entry count, and
/// the content id that doubles as the on-disk checksum — enough for CI to
/// assert cross-worker determinism without embedding every entry.
pub fn policy_json(store: &cb_policy::PolicyStore) -> Json {
    Json::obj()
        .with("schema", POLICY_SCHEMA)
        .with("scenario", store.scenario())
        .with("entries", store.len() as u64)
        // Decimal string: content ids use the full u64 range, beyond the
        // f64-backed JSON number type's 2^53.
        .with("content_id", store.content_id().to_string())
}

/// Helper: capture the last trace lines of a sim (used by scenarios that
/// build reports manually).
pub fn trace_tail<A: Actor>(sim: &Sim<A>, k: usize) -> Vec<String> {
    sim.trace().last(k).map(|r| format!("{r}")).collect()
}
