//! A tiny self-contained scenario used by the harness's own tests.
//!
//! `RingScenario` runs a heartbeat ring: every node periodically pings its
//! successor for a fixed number of rounds and records which peers it has
//! heard from. Its oracle demands that, after the run settles, every node
//! that is up has heard from its (up) predecessor — which holds under
//! transient faults but is violated by an unhealed partition or a node that
//! is never restarted. That gives the campaign/shrink tests a scenario with
//! a *controllable* violation at near-zero cost.

use crate::oracle::OracleVerdict;
use crate::plan::FaultPlan;
use crate::scenario::{RunReport, Scenario};
use cb_simnet::prelude::*;
use std::collections::BTreeSet;

const ROUNDS: u64 = 20;
const PERIOD_MS: u64 = 100;

/// Heartbeat-ring actor: ping successor every `PERIOD_MS`, `ROUNDS` times.
pub struct RingNode {
    heard_from: BTreeSet<u32>,
    rounds_left: u64,
}

impl RingNode {
    fn new() -> Self {
        RingNode {
            heard_from: BTreeSet::new(),
            rounds_left: ROUNDS,
        }
    }

    fn succ(ctx: &Ctx<'_, Ping>) -> NodeId {
        NodeId((ctx.id().0 + 1) % ctx.host_count() as u32)
    }
}

/// The single message type: a heartbeat.
#[derive(Clone, Debug)]
pub struct Ping;

impl Actor for RingNode {
    type Msg = Ping;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
        ctx.set_timer(SimDuration::from_millis(PERIOD_MS), 0);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Ping>, from: NodeId, _msg: Ping) {
        self.heard_from.insert(from.0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Ping>, _timer: TimerId, _tag: u64) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        let succ = Self::succ(ctx);
        ctx.send_unreliable(succ, Ping);
        if self.rounds_left > 0 {
            ctx.set_timer(SimDuration::from_millis(PERIOD_MS), 0);
        }
    }
}

/// The ring heartbeat scenario. See module docs.
pub struct RingScenario {
    /// Number of nodes in the ring.
    pub nodes: usize,
    /// Run horizon.
    pub horizon: SimTime,
}

impl Default for RingScenario {
    fn default() -> Self {
        RingScenario {
            nodes: 8,
            horizon: SimTime::from_secs(10),
        }
    }
}

impl Scenario for RingScenario {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn node_count(&self) -> usize {
        self.nodes
    }

    fn default_plan(&self, seed: u64) -> FaultPlan {
        // A transient crash of a rotating victim, healed well before the
        // heartbeat rounds end — the oracle holds under this plan.
        let victim = (seed % self.nodes as u64) as u32;
        FaultPlan::none()
            .crash(victim, 300)
            .restart(victim, 600)
            .loss(0.05, 200, 700)
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let topo = Topology::star(self.nodes, SimDuration::from_millis(5), 10_000_000);
        let mut sim: Sim<RingNode> = Sim::new(topo, seed, |_| RingNode::new());
        sim.start_all();
        plan.drive(&mut sim, seed ^ 0x9e37_79b9, self.horizon);

        // Oracle: every up node has heard from its nearest up predecessor.
        let n = self.nodes as u32;
        let mut missing = Vec::new();
        for i in 0..n {
            let me = NodeId(i);
            if !sim.is_up(me) {
                continue;
            }
            // Nearest up predecessor around the ring.
            let mut pred = None;
            for step in 1..n {
                let p = NodeId((i + n - step) % n);
                if sim.is_up(p) {
                    pred = Some(p);
                    break;
                }
            }
            let Some(p) = pred else { continue };
            // Only the immediate predecessor ever pings `me`, so if the
            // nearest up predecessor is not the immediate one, skip (its
            // pings went to its own successor, not to `me`).
            if (p.0 + 1) % n != i {
                continue;
            }
            if !sim.actor(me).heard_from.contains(&p.0) {
                missing.push(format!("{} never heard from {}", i, p.0));
            }
        }
        let verdicts = vec![OracleVerdict::check(
            "ring.heartbeat_connectivity",
            missing.is_empty(),
            if missing.is_empty() {
                "every up node heard its predecessor".to_string()
            } else {
                missing.join("; ")
            },
        )];
        RunReport::from_sim(self.name(), seed, plan, &sim, self.horizon, verdicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_passes() {
        let s = RingScenario::default();
        let report = s.run(7, &FaultPlan::none());
        assert!(!report.violated(), "verdicts: {:?}", report.verdicts);
        assert!(report.msgs_delivered > 0);
        assert!(report.last_trace.is_empty());
    }

    #[test]
    fn default_plan_recovers() {
        let s = RingScenario::default();
        for seed in [1, 2, 3] {
            let plan = s.default_plan(seed);
            let report = s.run(seed, &plan);
            assert!(
                !report.violated(),
                "seed {seed} verdicts: {:?}",
                report.verdicts
            );
        }
    }

    #[test]
    fn unhealed_partition_violates() {
        let s = RingScenario::default();
        // Cut node 3 off from everyone, forever.
        let others: Vec<u32> = (0..8u32).filter(|&i| i != 3).collect();
        let plan = FaultPlan::none().partition(&[3], &others, 0, None);
        let report = s.run(42, &plan);
        assert!(report.violated());
        assert!(report
            .failing_oracles()
            .contains(&"ring.heartbeat_connectivity"));
        assert!(!report.last_trace.is_empty());
    }

    #[test]
    fn crash_without_restart_is_tolerated_by_oracle() {
        // A permanently dead node is skipped by the oracle (it's not "up"),
        // and its successor only misses heartbeats from it, which the
        // nearest-up-predecessor rule forgives.
        let s = RingScenario::default();
        let plan = FaultPlan::none().crash(5, 50);
        let report = s.run(9, &plan);
        assert!(!report.violated(), "verdicts: {:?}", report.verdicts);
    }

    #[test]
    fn same_seed_same_fingerprint() {
        let s = RingScenario::default();
        let plan = s.default_plan(11);
        let a = s.run(11, &plan);
        let b = s.run(11, &plan);
        assert_eq!(a.fingerprint, b.fingerprint);
        let c = s.run(12, &plan);
        assert_ne!(a.fingerprint, c.fingerprint);
    }
}
