//! Invariant oracles.
//!
//! An [`Oracle`] inspects the world after a scenario run and produces an
//! [`OracleVerdict`]. Scenario-specific oracles (tree well-formedness, gossip
//! coverage, paxos agreement, swarm completion) live in the app crates; the
//! harness itself ships only the generic ones that every scenario gets for
//! free:
//!
//! * **quiescence** — the simulator ran out of work before the horizon, i.e.
//!   the protocol does not spin forever;
//! * **determinism** — re-running the same seed + fault plan yields an
//!   identical trace fingerprint (checked by the campaign runner itself
//!   because it needs a second run, see `campaign.rs`).

use std::fmt;

/// The outcome of one oracle check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleVerdict {
    /// Which oracle produced this verdict (e.g. `"tree.well_formed"`).
    pub name: String,
    /// Whether the invariant held.
    pub passed: bool,
    /// Human-readable explanation, embedded in failure artifacts.
    pub detail: String,
}

impl OracleVerdict {
    /// A passing verdict.
    pub fn pass(name: &str, detail: impl Into<String>) -> Self {
        OracleVerdict {
            name: name.to_string(),
            passed: true,
            detail: detail.into(),
        }
    }

    /// A failing verdict.
    pub fn fail(name: &str, detail: impl Into<String>) -> Self {
        OracleVerdict {
            name: name.to_string(),
            passed: false,
            detail: detail.into(),
        }
    }

    /// Builds a verdict from a condition.
    pub fn check(name: &str, passed: bool, detail: impl Into<String>) -> Self {
        OracleVerdict {
            name: name.to_string(),
            passed,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for OracleVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            if self.passed { "ok" } else { "FAIL" },
            self.name,
            self.detail
        )
    }
}

/// An invariant checked against a world of type `W` after a run.
///
/// `W` is whatever the scenario hands its oracles — typically a reference to
/// the finished `Sim` plus scenario bookkeeping. The blanket impl lets plain
/// closures act as oracles.
pub trait Oracle<W: ?Sized> {
    /// Checks the invariant and reports a verdict.
    fn check(&self, world: &W) -> OracleVerdict;
}

impl<W: ?Sized, F> Oracle<W> for F
where
    F: Fn(&W) -> OracleVerdict,
{
    fn check(&self, world: &W) -> OracleVerdict {
        self(world)
    }
}

/// Runs every oracle in `oracles` against `world`, collecting verdicts.
pub fn check_all<W: ?Sized>(oracles: &[&dyn Oracle<W>], world: &W) -> Vec<OracleVerdict> {
    oracles.iter().map(|o| o.check(world)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_an_oracle() {
        let oracle =
            |w: &u32| OracleVerdict::check("is_even", w.is_multiple_of(2), format!("value={w}"));
        assert!(oracle.check(&4).passed);
        assert!(!oracle.check(&3).passed);
    }

    #[test]
    fn check_all_collects_in_order() {
        let a = |_: &()| OracleVerdict::pass("a", "");
        let b = |_: &()| OracleVerdict::fail("b", "boom");
        let verdicts = check_all(&[&a as &dyn Oracle<()>, &b], &());
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts[0].passed);
        assert!(!verdicts[1].passed);
        assert_eq!(verdicts[1].name, "b");
    }

    #[test]
    fn display_marks_failures() {
        let v = OracleVerdict::fail("x", "bad");
        assert!(format!("{v}").contains("FAIL"));
        let p = OracleVerdict::pass("x", "good");
        assert!(format!("{p}").contains("ok"));
    }
}
