//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this workspace is fully offline, so the real
//! `proptest` cannot be fetched. This crate re-implements the narrow subset
//! the workspace's property tests actually use, with the same surface
//! syntax:
//!
//! * the [`proptest!`] macro with `pattern in strategy` parameters and an
//!   optional `#![proptest_config(...)]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * range strategies (`0u64..100`, `0usize..=100`, `-1e6f64..1e6`),
//! * [`any::<T>()`](prelude::any) for primitive integers, `bool`, and
//!   [`prop::sample::Index`],
//! * [`prop::collection::vec`](prelude::prop::collection::vec).
//!
//! Differences from the real crate: case generation is **deterministic**
//! (seeded from the test's module path and name, overridable with the
//! `PROPTEST_SEED` environment variable) and failing inputs are reported
//! but **not shrunk**. For a simulation-heavy workspace determinism is a
//! feature: a red test fails identically on every machine.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator state (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary byte string (FNV-1a), XORed with
    /// `PROPTEST_SEED` when set so a failure can be re-explored.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(v) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = v.parse::<u64>() {
                h ^= s;
            }
        }
        TestRng(h)
    }

    /// Seeds directly.
    pub fn seed_from(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A failed test case, produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; simulations here are heavier, and
        // 64 deterministic cases keep `cargo test` snappy.
        ProptestConfig { cases: 64 }
    }
}

/// Something that can generate values for a test case.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let off = (rng.next_u64() as u128) % span;
                (self.start as u128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as u128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Produces an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`prelude::any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Creates the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Mirrors `proptest::prop` (the strategy combinator namespace).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// `vec(element_strategy, len_range)`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};

        /// An opaque index into collections of unknown length.
        #[derive(Clone, Copy, Debug)]
        pub struct Index(u64);

        impl Index {
            /// Maps the raw draw into `[0, len)`.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        if !(__pa == __pb) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __pa,
                __pb
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pa, __pb) = (&$a, &$b);
        if !(__pa == __pb) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        if __pa == __pb {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __pa
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pa, __pb) = (&$a, &$b);
        if __pa == __pb {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Declares property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg(<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( $(#[$attr:meta])* fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let __inputs = ( $( $crate::Strategy::generate(&($s), &mut __rng), )+ );
                    let __desc = ::std::format!(
                        concat!("(", $(stringify!($p), " in ", stringify!($s), ", ",)+ ") = {:?}"),
                        __inputs
                    );
                    let ( $($p,)+ ) = __inputs;
                    let __result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __result {
                        ::core::panic!(
                            "proptest case {}/{} failed: {}\n  inputs {}",
                            __case + 1,
                            __cfg.cases,
                            __e,
                            __desc
                        );
                    }
                }
            }
        )*
    };
}

/// One-import convenience, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in 3usize..=5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((3..=5).contains(&w));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u16>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn index_maps_into_len(idx in any::<prop::sample::Index>(), len in 1usize..40) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn float_ranges_in_bounds(x in -1e3f64..1e3) {
            prop_assert!((-1e3..1e3).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Doc comments before cases must parse.
        #[test]
        fn config_header_is_honored(mut v in prop::collection::vec(0u32..5, 0..4)) {
            v.push(1);
            prop_assert!(!v.is_empty());
        }
    }
}
