//! Property tests for the corpus determinism contract.
//!
//! Invariants:
//!
//! 1. **Insertion-order invariance.** The saved index bytes depend only
//!    on the record *set*, never on the order records were ingested.
//! 2. **Worker-count invariance.** Ingesting the same campaign run at
//!    1, 2, and 4 workers yields byte-identical indexes.
//! 3. **Query determinism.** Evaluating a predicate twice over the same
//!    corpus returns the same records in the same order.
//! 4. **Self-diff is empty.** `diff(A, A)` never flags anything, for any
//!    corpus and any threshold configuration.
//! 5. **Planted regressions are flagged.** A counter-mean movement past
//!    the relative threshold and absolute floor is always reported.

use cb_corpus::{diff, parse_predicate, select, Corpus, DiffConfig, SeedRecord};
use cb_harness::prelude::{run_campaign, CampaignConfig, CampaignOutcome, FaultPlan, Scenario};
use cb_harness::toy::RingScenario;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small ring campaign whose reports are kept for ingestion.
fn ring_outcome(base_seed: u64, seeds: u64, workers: usize) -> CampaignOutcome {
    let scenario = RingScenario::default();
    let cfg = CampaignConfig {
        base_seed,
        seeds,
        workers,
        check_determinism: false,
        shrink: false,
        artifact_dir: None,
        plan_override: None,
        keep_reports: true,
    };
    run_campaign(&scenario, &cfg)
}

/// Distills one ring run into a record, with an optional unhealed
/// partition so some records fail their oracle.
fn ring_record(seed: u64, partitioned: bool) -> SeedRecord {
    let scenario = RingScenario::default();
    let plan = if partitioned {
        let others: Vec<u32> = (0..RingScenario::default().nodes as u32)
            .filter(|&n| n != 3)
            .collect();
        FaultPlan::none().partition(&[3], &others, 0, None)
    } else {
        FaultPlan::none()
    };
    let report = Scenario::run(&scenario, seed, &plan);
    SeedRecord::from_report(&report)
}

/// Deterministically permutes `items` in place from `seed`
/// (Fisher–Yates over a TestRng).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = TestRng::seed_from(seed);
    for i in (1..items.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Index bytes are a pure function of the record set: any insertion
    /// order (including duplicate inserts) produces identical bytes.
    #[test]
    fn index_bytes_are_insertion_order_invariant(seed in 1u64..1000, order in any::<u64>()) {
        let mut records: Vec<SeedRecord> = (seed..seed + 6)
            .map(|s| ring_record(s, s % 2 == 0))
            .collect();
        let mut forward = Corpus::new();
        for r in &records {
            forward.insert(r.clone());
        }
        shuffle(&mut records, order);
        let mut shuffled = Corpus::new();
        for r in &records {
            shuffled.insert(r.clone());
            shuffled.insert(r.clone()); // duplicate inserts are no-ops
        }
        prop_assert_eq!(forward.index_bytes(), shuffled.index_bytes());
    }

    /// Ingesting the same campaign at different worker counts yields
    /// byte-identical indexes — the corpus never sees scheduling order.
    #[test]
    fn index_bytes_are_worker_count_invariant(base in 1u64..500) {
        let mut indexes = Vec::new();
        for workers in [1usize, 2, 4] {
            let outcome = ring_outcome(base, 5, workers);
            let mut corpus = Corpus::new();
            corpus.ingest_outcome(&outcome);
            prop_assert_eq!(corpus.len(), 5);
            indexes.push(corpus.index_bytes());
        }
        prop_assert_eq!(&indexes[0], &indexes[1]);
        prop_assert_eq!(&indexes[0], &indexes[2]);
    }

    /// Selecting with any well-formed predicate is deterministic and
    /// returns records in corpus order.
    #[test]
    fn queries_are_deterministic(seed in 1u64..1000) {
        let mut corpus = Corpus::new();
        for s in seed..seed + 6 {
            corpus.insert(ring_record(s, s % 3 == 0));
        }
        for pred_src in [
            "true",
            "failed",
            "passed & scenario=ring",
            "counter(net.msgs_delivered) >= 1",
            "!passed | oracle_failed(ring.heartbeat_connectivity)",
        ] {
            let pred = parse_predicate(pred_src).expect("predicate parses");
            let a: Vec<(String, u64)> = select(&corpus, &pred)
                .iter()
                .map(|r| (r.scenario.clone(), r.seed))
                .collect();
            let b: Vec<(String, u64)> = select(&corpus, &pred)
                .iter()
                .map(|r| (r.scenario.clone(), r.seed))
                .collect();
            prop_assert_eq!(&a, &b);
            let mut sorted = a.clone();
            sorted.sort();
            prop_assert_eq!(a, sorted, "results out of corpus order for {}", pred_src);
        }
    }

    /// diff(A, A) is empty for every corpus and threshold configuration.
    #[test]
    fn self_diff_is_always_empty(
        seed in 1u64..1000,
        rel in 0.0f64..0.5,
        floor in 0.0f64..16.0,
    ) {
        let mut corpus = Corpus::new();
        for s in seed..seed + 4 {
            corpus.insert(ring_record(s, s % 2 == 0));
        }
        let cfg = DiffConfig {
            rel_threshold: rel,
            abs_floor: floor,
            ..DiffConfig::default()
        };
        let report = diff(&corpus, &corpus, &cfg);
        prop_assert!(!report.regressed(), "self-diff flagged: {:?}", report.findings);
        prop_assert!(report.findings.is_empty());
    }

    /// A counter-mean movement past both the relative threshold and the
    /// absolute floor is always flagged, whatever the surrounding noise.
    #[test]
    fn planted_counter_regression_is_always_flagged(
        seed in 1u64..1000,
        bump in 100u64..10_000,
    ) {
        let mut baseline = Corpus::new();
        let mut candidate = Corpus::new();
        for s in seed..seed + 4 {
            let record = ring_record(s, false);
            baseline.insert(record.clone());
            let mut counters: BTreeMap<String, u64> = record.counters.clone();
            let entry = counters.entry("ring.regressed_counter".into()).or_insert(0);
            *entry += bump;
            let planted = SeedRecord {
                counters,
                ..record
            };
            candidate.insert(planted);
        }
        let report = diff(&baseline, &candidate, &DiffConfig::default());
        prop_assert!(report.regressed());
        prop_assert!(
            report
                .findings
                .iter()
                .any(|f| f.kind == "counter" && f.key == "ring.regressed_counter"),
            "planted regression missing from {:?}",
            report.findings
        );
    }
}
