//! Predicate combinators and a small text syntax over the corpus.
//!
//! The combinators answer the roadmap's canonical campaign questions
//! without bespoke scripts:
//!
//! * "all seeds where the governor hit Survival at least twice" —
//!   `hist_count(core.governor.in_survival_sim_ns) >= 2` (the dwell
//!   histogram gains one sample per node that entered Survival).
//! * "blame targets shared by at least 3 violating seeds" —
//!   [`top_blame`] with `min_seeds = 3`.
//!
//! Text grammar (whitespace-insensitive):
//!
//! ```text
//! expr   := or
//! or     := and ('|' and)*
//! and    := unary ('&' unary)*
//! unary  := '!' unary | '(' expr ')' | term
//! term   := 'passed' | 'failed'
//!         | 'scenario=' NAME
//!         | 'oracle_failed(' NAME ')'
//!         | 'blame(' NAME ')'
//!         | 'counter(' KEY ')' ('>=' | '<=' | '=') INT
//!         | 'gauge(' KEY ')' ('>=' | '<=' | '=') INT
//!         | 'hist_count(' KEY ')' ('>=' | '<=' | '=') INT
//! ```

use crate::record::SeedRecord;
use crate::store::Corpus;

/// Integer comparison used by metric terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `>=`
    AtLeast,
    /// `<=`
    AtMost,
    /// `=`
    Equal,
}

impl Cmp {
    fn eval(self, lhs: i128, rhs: i128) -> bool {
        match self {
            Cmp::AtLeast => lhs >= rhs,
            Cmp::AtMost => lhs <= rhs,
            Cmp::Equal => lhs == rhs,
        }
    }
}

/// A composable filter over [`SeedRecord`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Predicate {
    /// Matches every record.
    True,
    /// Scenario name equals.
    ScenarioIs(String),
    /// Overall verdict: `Passed(true)` = every oracle passed.
    Passed(bool),
    /// The named oracle ran and failed.
    OracleFailed(String),
    /// Counter value (0 when absent) compares against the literal.
    Counter(String, Cmp, u64),
    /// Gauge value (0 when absent) compares against the literal.
    Gauge(String, Cmp, i64),
    /// Histogram sample count (0 when absent) compares against the literal.
    HistCount(String, Cmp, u64),
    /// The blame column contains the named decision target.
    BlameContains(String),
    /// Both must hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either may hold.
    Or(Box<Predicate>, Box<Predicate>),
    /// Inverts the inner predicate.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluates against one record.
    pub fn matches(&self, r: &SeedRecord) -> bool {
        match self {
            Predicate::True => true,
            Predicate::ScenarioIs(name) => r.scenario == *name,
            Predicate::Passed(want) => r.passed == *want,
            Predicate::OracleFailed(name) => {
                r.oracles.iter().any(|(n, passed)| n == name && !passed)
            }
            Predicate::Counter(key, cmp, rhs) => {
                let v = r.counters.get(key).copied().unwrap_or(0);
                cmp.eval(v as i128, *rhs as i128)
            }
            Predicate::Gauge(key, cmp, rhs) => {
                let v = r.gauges.get(key).copied().unwrap_or(0);
                cmp.eval(v as i128, *rhs as i128)
            }
            Predicate::HistCount(key, cmp, rhs) => {
                let v: u64 = r
                    .hists
                    .get(key)
                    .map(|pairs| pairs.iter().map(|(_, c)| c).sum())
                    .unwrap_or(0);
                cmp.eval(v as i128, *rhs as i128)
            }
            Predicate::BlameContains(target) => r.blame.iter().any(|b| b == target),
            Predicate::And(a, b) => a.matches(r) && b.matches(r),
            Predicate::Or(a, b) => a.matches(r) || b.matches(r),
            Predicate::Not(inner) => !inner.matches(r),
        }
    }
}

/// Selects matching records in corpus (sorted) order — deterministic.
pub fn select<'a>(corpus: &'a Corpus, predicate: &Predicate) -> Vec<&'a SeedRecord> {
    corpus.iter().filter(|r| predicate.matches(r)).collect()
}

/// One blame target and the violating seeds that share it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlameTally {
    /// Decision-span name, e.g. `decide:kv.read_replica`.
    pub target: String,
    /// `(scenario, seed)` of every violating record naming the target,
    /// sorted.
    pub seeds: Vec<(String, u64)>,
}

/// Blame targets shared by at least `min_seeds` **violating** records,
/// sorted by descending seed count, then target name. `min_seeds = 3` is
/// the roadmap's canonical cross-seed triage question.
pub fn top_blame(corpus: &Corpus, min_seeds: usize) -> Vec<BlameTally> {
    let mut tally: std::collections::BTreeMap<&str, Vec<(String, u64)>> = Default::default();
    for r in corpus.iter().filter(|r| !r.passed) {
        for target in &r.blame {
            tally
                .entry(target)
                .or_default()
                .push((r.scenario.clone(), r.seed));
        }
    }
    let mut out: Vec<BlameTally> = tally
        .into_iter()
        .filter(|(_, seeds)| seeds.len() >= min_seeds)
        .map(|(target, mut seeds)| {
            seeds.sort();
            seeds.dedup();
            BlameTally {
                target: target.to_string(),
                seeds,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.seeds
            .len()
            .cmp(&a.seeds.len())
            .then_with(|| a.target.cmp(&b.target))
    });
    out
}

/// Parses the text predicate syntax (see the module docs for the grammar).
pub fn parse_predicate(input: &str) -> Result<Predicate, String> {
    let mut p = Parser {
        src: input.as_bytes(),
        pos: 0,
    };
    let pred = p.or_expr()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(format!(
            "trailing input at byte {}: '{}'",
            p.pos,
            &input[p.pos..]
        ));
    }
    Ok(pred)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<Predicate, String> {
        let mut lhs = self.and_expr()?;
        while self.eat(b'|') {
            let rhs = self.and_expr()?;
            lhs = Predicate::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Predicate, String> {
        let mut lhs = self.unary()?;
        while self.eat(b'&') {
            let rhs = self.unary()?;
            lhs = Predicate::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Predicate, String> {
        if self.eat(b'!') {
            return Ok(Predicate::Not(Box::new(self.unary()?)));
        }
        if self.eat(b'(') {
            let inner = self.or_expr()?;
            if !self.eat(b')') {
                return Err("expected ')'".to_string());
            }
            return Ok(inner);
        }
        self.term()
    }

    /// A bare word: letters, digits, `.`, `_`, `-`, `:`.
    fn word(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-' | b':'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a name at byte {start}"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_string())
    }

    /// `( NAME )` — everything up to the closing paren.
    fn paren_arg(&mut self) -> Result<String, String> {
        if !self.eat(b'(') {
            return Err("expected '('".to_string());
        }
        let arg = self.word()?;
        if !self.eat(b')') {
            return Err("expected ')'".to_string());
        }
        Ok(arg)
    }

    fn cmp(&mut self) -> Result<Cmp, String> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(b">=") {
            self.pos += 2;
            Ok(Cmp::AtLeast)
        } else if self.src[self.pos..].starts_with(b"<=") {
            self.pos += 2;
            Ok(Cmp::AtMost)
        } else if self.eat(b'=') {
            Ok(Cmp::Equal)
        } else {
            Err("expected '>=', '<=', or '='".to_string())
        }
    }

    fn int(&mut self) -> Result<i64, String> {
        self.skip_ws();
        let neg = self.eat(b'-');
        let start = self.pos;
        while self.src.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err("expected an integer".to_string());
        }
        let digits = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let v: i64 = digits.parse().map_err(|e| format!("bad integer: {e}"))?;
        Ok(if neg { -v } else { v })
    }

    fn term(&mut self) -> Result<Predicate, String> {
        let word = self.word()?;
        match word.as_str() {
            "passed" => Ok(Predicate::Passed(true)),
            "failed" => Ok(Predicate::Passed(false)),
            "true" => Ok(Predicate::True),
            "scenario" => {
                if !self.eat(b'=') {
                    return Err("expected '=' after 'scenario'".to_string());
                }
                Ok(Predicate::ScenarioIs(self.word()?))
            }
            "oracle_failed" => Ok(Predicate::OracleFailed(self.paren_arg()?)),
            "blame" => Ok(Predicate::BlameContains(self.paren_arg()?)),
            "counter" => {
                let key = self.paren_arg()?;
                let cmp = self.cmp()?;
                let v = self.int()?;
                if v < 0 {
                    return Err("counters are unsigned".to_string());
                }
                Ok(Predicate::Counter(key, cmp, v as u64))
            }
            "gauge" => {
                let key = self.paren_arg()?;
                let cmp = self.cmp()?;
                Ok(Predicate::Gauge(key, cmp, self.int()?))
            }
            "hist_count" => {
                let key = self.paren_arg()?;
                let cmp = self.cmp()?;
                let v = self.int()?;
                if v < 0 {
                    return Err("histogram counts are unsigned".to_string());
                }
                Ok(Predicate::HistCount(key, cmp, v as u64))
            }
            other => Err(format!("unknown term '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(scenario: &str, seed: u64, passed: bool) -> SeedRecord {
        SeedRecord {
            scenario: scenario.to_string(),
            seed,
            plan: "none".to_string(),
            passed,
            fingerprint: seed.wrapping_mul(0x9e37),
            events: 100 + seed,
            oracles: vec![("kv.linearizable".to_string(), passed)],
            counters: [("core.governor.step_downs".to_string(), seed)].into(),
            gauges: [("core.governor.rung".to_string(), if passed { 0 } else { 2 })].into(),
            hists: [(
                "core.governor.in_survival_sim_ns".to_string(),
                if seed >= 2 {
                    vec![(10, seed), (12, 1)]
                } else {
                    vec![]
                },
            )]
            .into(),
            blame: if passed {
                vec![]
            } else {
                vec!["decide:kv.read_replica".to_string()]
            },
        }
    }

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        for seed in 0..6 {
            c.insert(record("kv", seed, seed % 2 == 0));
        }
        c.insert(record("mencius", 99, true));
        c
    }

    #[test]
    fn canonical_survival_query() {
        let c = corpus();
        let p = parse_predicate("hist_count(core.governor.in_survival_sim_ns) >= 2").unwrap();
        let hits = select(&c, &p);
        // Seeds 2..=5 (and mencius/99) have survival samples.
        let seeds: Vec<u64> = hits.iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![2, 3, 4, 5, 99]);
        let p = parse_predicate("scenario=kv & hist_count(core.governor.in_survival_sim_ns) >= 2")
            .unwrap();
        let seeds: Vec<u64> = select(&c, &p).iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![2, 3, 4, 5]);
    }

    #[test]
    fn combinators_compose() {
        let c = corpus();
        let p = parse_predicate(
            "scenario=kv & failed & counter(core.governor.step_downs)>=3 \
             & !oracle_failed(missing.oracle)",
        )
        .unwrap();
        let seeds: Vec<u64> = select(&c, &p).iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![3, 5]);

        let p = parse_predicate("(scenario=mencius | seeds_is_unknown_term)");
        assert!(p.is_err());

        let p = parse_predicate("scenario=mencius | gauge(core.governor.rung)>=2").unwrap();
        let seeds: Vec<u64> = select(&c, &p).iter().map(|r| r.seed).collect();
        assert_eq!(seeds, vec![1, 3, 5, 99]);
    }

    #[test]
    fn blame_predicate_and_top_blame() {
        let c = corpus();
        let p = parse_predicate("blame(decide:kv.read_replica)").unwrap();
        assert_eq!(select(&c, &p).len(), 3); // failing seeds 1, 3, 5

        let tallies = top_blame(&c, 3);
        assert_eq!(tallies.len(), 1);
        assert_eq!(tallies[0].target, "decide:kv.read_replica");
        assert_eq!(
            tallies[0].seeds,
            vec![
                ("kv".to_string(), 1),
                ("kv".to_string(), 3),
                ("kv".to_string(), 5)
            ]
        );
        // Threshold above the sharing count: nothing qualifies.
        assert!(top_blame(&c, 4).is_empty());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "counter(x) > 5",
            "counter(x)>=",
            "scenario",
            "passed extra",
            "(passed",
            "counter(x)>=-1",
        ] {
            assert!(parse_predicate(bad).is_err(), "accepted: '{bad}'");
        }
    }

    #[test]
    fn query_is_deterministic() {
        let c = corpus();
        let p = parse_predicate("failed").unwrap();
        let a: Vec<u64> = select(&c, &p).iter().map(|r| r.seed).collect();
        let b: Vec<u64> = select(&c, &p).iter().map(|r| r.seed).collect();
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 3, 5]);
    }
}
