//! Cross-campaign regression diffing.
//!
//! [`diff`] compares two corpora (a baseline campaign and a candidate)
//! per scenario and emits a deterministic [`DiffReport`]:
//!
//! * **pass_rate** — the candidate's pass rate dropped below the
//!   baseline's by more than the configured slack.
//! * **new_failing_oracle** — an oracle fails in the candidate that never
//!   failed in the baseline.
//! * **counter** — a telemetry counter's per-seed mean moved by more than
//!   a noise threshold (relative with an absolute floor).
//! * **histogram** — the merged log-bucket distributions of a histogram
//!   key diverge by total-variation distance above threshold (skipped for
//!   thin histograms, where a few samples swing the distance).
//! * **coverage** — a scenario present in one corpus is absent from the
//!   other.
//!
//! Wall-clock keys never produce findings (they are blanked at ingestion
//! anyway). Findings are generated in sorted scenario/kind/key order from
//! sorted inputs, so `diff(A, B)` is a pure function of the two record
//! sets: byte-identical reports across workers and re-ingestion orders,
//! and `diff(A, A)` is always empty.

use crate::record::SeedRecord;
use crate::store::Corpus;
use cb_harness::json::Json;
use cb_telemetry::is_wall_key;
use std::collections::{BTreeMap, BTreeSet};

/// Schema tag of a serialized [`DiffReport`].
pub const DIFF_SCHEMA: &str = "cb-corpus-diff/v1";

/// Noise thresholds for [`diff`].
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Relative counter-mean movement tolerated, as a fraction of the
    /// larger mean (default 10%).
    pub rel_threshold: f64,
    /// Absolute counter-mean movement always tolerated, masking relative
    /// blow-ups on near-zero counters (default 4 per seed).
    pub abs_floor: f64,
    /// Total-variation distance tolerated between merged histogram
    /// distributions (default 0.15).
    pub hist_divergence: f64,
    /// Minimum merged sample count (in both corpora) before a histogram
    /// key is diffed at all (default 16).
    pub hist_min_count: u64,
    /// Pass-rate drop tolerated before flagging (default 0: any drop
    /// flags).
    pub pass_rate_drop: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            rel_threshold: 0.10,
            abs_floor: 4.0,
            hist_divergence: 0.15,
            hist_min_count: 16,
            pass_rate_drop: 0.0,
        }
    }
}

/// One flagged regression (or coverage drift).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// `pass_rate`, `new_failing_oracle`, `counter`, `histogram`, or
    /// `coverage`.
    pub kind: String,
    /// Scenario the finding belongs to.
    pub scenario: String,
    /// Metric key or oracle name (empty for scenario-level findings).
    pub key: String,
    /// Baseline-side value, pre-formatted (`{:.4}` for floats).
    pub baseline: String,
    /// Candidate-side value, pre-formatted.
    pub candidate: String,
    /// Human-readable explanation.
    pub detail: String,
}

impl Finding {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("kind", self.kind.as_str())
            .with("scenario", self.scenario.as_str())
            .with("key", self.key.as_str())
            .with("baseline", self.baseline.as_str())
            .with("candidate", self.candidate.as_str())
            .with("detail", self.detail.as_str())
    }
}

/// Deterministic output of [`diff`].
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Flagged findings, in sorted scenario/kind/key generation order.
    pub findings: Vec<Finding>,
    /// Records in the baseline corpus.
    pub baseline_seeds: usize,
    /// Records in the candidate corpus.
    pub candidate_seeds: usize,
}

impl DiffReport {
    /// True when anything was flagged (the CI gate condition).
    pub fn regressed(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Canonical JSON rendering (schema [`DIFF_SCHEMA`]). Contains no
    /// wall-clock values, so equal inputs render byte-equal.
    pub fn to_json(&self) -> Json {
        let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
        for f in &self.findings {
            *by_kind.entry(f.kind.as_str()).or_insert(0) += 1;
        }
        let mut kinds = Json::obj();
        for (k, n) in by_kind {
            kinds.set(k, n);
        }
        Json::obj()
            .with("schema", DIFF_SCHEMA)
            .with("baseline_seeds", self.baseline_seeds)
            .with("candidate_seeds", self.candidate_seeds)
            .with(
                "findings",
                Json::Arr(self.findings.iter().map(Finding::to_json).collect()),
            )
            .with(
                "summary",
                Json::obj()
                    .with("findings", self.findings.len())
                    .with("regressed", self.regressed())
                    .with("by_kind", kinds),
            )
    }
}

/// Per-scenario aggregates of one corpus.
#[derive(Default)]
struct ScenarioStats {
    seeds: u64,
    passed: u64,
    counter_sums: BTreeMap<String, u64>,
    hist_merged: BTreeMap<String, BTreeMap<u32, u64>>,
    failing_oracles: BTreeSet<String>,
}

impl ScenarioStats {
    fn absorb(&mut self, r: &SeedRecord) {
        self.seeds += 1;
        self.passed += r.passed as u64;
        for (k, v) in &r.counters {
            *self.counter_sums.entry(k.clone()).or_insert(0) += v;
        }
        for (k, pairs) in &r.hists {
            let merged = self.hist_merged.entry(k.clone()).or_default();
            for (b, c) in pairs {
                *merged.entry(*b).or_insert(0) += c;
            }
        }
        for (name, passed) in &r.oracles {
            if !passed {
                self.failing_oracles.insert(name.clone());
            }
        }
    }
}

fn stats_by_scenario(corpus: &Corpus) -> BTreeMap<String, ScenarioStats> {
    let mut out: BTreeMap<String, ScenarioStats> = BTreeMap::new();
    for r in corpus.iter() {
        out.entry(r.scenario.clone()).or_default().absorb(r);
    }
    out
}

/// Total-variation distance between two bucket distributions: half the L1
/// distance of the normalized mass, in `[0, 1]`.
fn tv_distance(a: &BTreeMap<u32, u64>, b: &BTreeMap<u32, u64>) -> f64 {
    let na: u64 = a.values().sum();
    let nb: u64 = b.values().sum();
    if na == 0 || nb == 0 {
        return if na == nb { 0.0 } else { 1.0 };
    }
    let buckets: BTreeSet<u32> = a.keys().chain(b.keys()).copied().collect();
    let mut l1 = 0.0;
    for bucket in buckets {
        let pa = a.get(&bucket).copied().unwrap_or(0) as f64 / na as f64;
        let pb = b.get(&bucket).copied().unwrap_or(0) as f64 / nb as f64;
        l1 += (pa - pb).abs();
    }
    l1 / 2.0
}

/// Diffs `candidate` against `baseline` under `cfg`'s noise thresholds.
pub fn diff(baseline: &Corpus, candidate: &Corpus, cfg: &DiffConfig) -> DiffReport {
    let base = stats_by_scenario(baseline);
    let cand = stats_by_scenario(candidate);
    let mut findings = Vec::new();

    let scenarios: BTreeSet<&String> = base.keys().chain(cand.keys()).collect();
    for scenario in scenarios {
        let (a, b) = match (base.get(scenario), cand.get(scenario)) {
            (Some(a), Some(b)) => (a, b),
            (a, b) => {
                let (side, seeds) = match (a, b) {
                    (Some(a), _) => ("baseline", a.seeds),
                    (_, Some(b)) => ("candidate", b.seeds),
                    (None, None) => unreachable!("scenario came from one of the key sets"),
                };
                findings.push(Finding {
                    kind: "coverage".to_string(),
                    scenario: scenario.clone(),
                    key: String::new(),
                    baseline: if side == "baseline" {
                        format!("{seeds} seeds")
                    } else {
                        "absent".to_string()
                    },
                    candidate: if side == "candidate" {
                        format!("{seeds} seeds")
                    } else {
                        "absent".to_string()
                    },
                    detail: format!("scenario only present in the {side} corpus"),
                });
                continue;
            }
        };

        // Pass rate.
        let rate_a = a.passed as f64 / a.seeds as f64;
        let rate_b = b.passed as f64 / b.seeds as f64;
        if rate_a - rate_b > cfg.pass_rate_drop {
            findings.push(Finding {
                kind: "pass_rate".to_string(),
                scenario: scenario.clone(),
                key: String::new(),
                baseline: format!("{rate_a:.4}"),
                candidate: format!("{rate_b:.4}"),
                detail: format!(
                    "pass rate dropped {:.4} ({}/{} -> {}/{})",
                    rate_a - rate_b,
                    a.passed,
                    a.seeds,
                    b.passed,
                    b.seeds
                ),
            });
        }

        // Oracles failing only in the candidate.
        for name in b.failing_oracles.difference(&a.failing_oracles) {
            findings.push(Finding {
                kind: "new_failing_oracle".to_string(),
                scenario: scenario.clone(),
                key: name.clone(),
                baseline: "passing".to_string(),
                candidate: "failing".to_string(),
                detail: format!("oracle '{name}' fails only in the candidate"),
            });
        }

        // Counter per-seed means.
        let counter_keys: BTreeSet<&String> =
            a.counter_sums.keys().chain(b.counter_sums.keys()).collect();
        for key in counter_keys {
            if is_wall_key(key) {
                continue;
            }
            let mean_a = a.counter_sums.get(key).copied().unwrap_or(0) as f64 / a.seeds as f64;
            let mean_b = b.counter_sums.get(key).copied().unwrap_or(0) as f64 / b.seeds as f64;
            let delta = mean_b - mean_a;
            let tolerance = cfg
                .abs_floor
                .max(cfg.rel_threshold * mean_a.abs().max(mean_b.abs()).max(1.0));
            if delta.abs() > tolerance {
                findings.push(Finding {
                    kind: "counter".to_string(),
                    scenario: scenario.clone(),
                    key: key.clone(),
                    baseline: format!("{mean_a:.4}"),
                    candidate: format!("{mean_b:.4}"),
                    detail: format!("per-seed mean moved {delta:+.4} (tolerance {tolerance:.4})"),
                });
            }
        }

        // Histogram distribution divergence.
        let hist_keys: BTreeSet<&String> =
            a.hist_merged.keys().chain(b.hist_merged.keys()).collect();
        for key in hist_keys {
            if is_wall_key(key) {
                continue;
            }
            let empty = BTreeMap::new();
            let ha = a.hist_merged.get(key).unwrap_or(&empty);
            let hb = b.hist_merged.get(key).unwrap_or(&empty);
            let na: u64 = ha.values().sum();
            let nb: u64 = hb.values().sum();
            if na < cfg.hist_min_count || nb < cfg.hist_min_count {
                continue;
            }
            let tv = tv_distance(ha, hb);
            if tv > cfg.hist_divergence {
                findings.push(Finding {
                    kind: "histogram".to_string(),
                    scenario: scenario.clone(),
                    key: key.clone(),
                    baseline: format!("{na} samples"),
                    candidate: format!("{nb} samples"),
                    detail: format!(
                        "bucket distributions diverge: total variation {tv:.4} \
                         (threshold {:.4})",
                        cfg.hist_divergence
                    ),
                });
            }
        }
    }

    DiffReport {
        findings,
        baseline_seeds: baseline.len(),
        candidate_seeds: candidate.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(scenario: &str, seed: u64, passed: bool, msgs: u64) -> SeedRecord {
        SeedRecord {
            scenario: scenario.to_string(),
            seed,
            plan: "none".to_string(),
            passed,
            fingerprint: seed,
            events: 1000,
            oracles: vec![("ring.heartbeat_connectivity".to_string(), passed)],
            counters: [
                ("net.msgs_delivered".to_string(), msgs),
                ("core.decision_latency_wall_ns".to_string(), 0),
            ]
            .into(),
            gauges: BTreeMap::new(),
            hists: [(
                "net.delivery_latency_us".to_string(),
                vec![(40, 20 + seed), (41, 10)],
            )]
            .into(),
            blame: vec![],
        }
    }

    fn corpus(msgs: u64, passed: bool) -> Corpus {
        let mut c = Corpus::new();
        for seed in 0..4 {
            c.insert(record("ring", seed, passed, msgs + seed));
        }
        c
    }

    #[test]
    fn diff_of_identical_corpora_is_empty() {
        let a = corpus(500, true);
        let report = diff(&a, &a.clone(), &DiffConfig::default());
        assert!(!report.regressed(), "findings: {:?}", report.findings);
        assert_eq!(report.baseline_seeds, 4);
        // And the rendering is stable.
        let x = report.to_json().to_string_pretty();
        let y = diff(&a, &a, &DiffConfig::default())
            .to_json()
            .to_string_pretty();
        assert_eq!(x, y);
    }

    #[test]
    fn planted_counter_regression_is_flagged() {
        let a = corpus(500, true);
        let b = corpus(900, true); // +400 msgs/seed: way past 10% + floor
        let report = diff(&a, &b, &DiffConfig::default());
        assert!(report.regressed());
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == "counter")
            .expect("counter finding");
        assert_eq!(f.key, "net.msgs_delivered");
        assert_eq!(f.scenario, "ring");
    }

    #[test]
    fn small_counter_noise_is_tolerated() {
        let a = corpus(500, true);
        let b = corpus(503, true); // < 10% and < abs floor applies per mean
        let report = diff(&a, &b, &DiffConfig::default());
        assert!(!report.regressed(), "findings: {:?}", report.findings);
    }

    #[test]
    fn wall_keys_never_flag() {
        let a = corpus(500, true);
        let mut b = Corpus::new();
        for seed in 0..4 {
            let mut r = record("ring", seed, true, 500 + seed);
            r.counters
                .insert("core.decision_latency_wall_ns".to_string(), 9_999_999);
            b.insert(r);
        }
        let report = diff(&a, &b, &DiffConfig::default());
        assert!(!report.regressed(), "findings: {:?}", report.findings);
    }

    #[test]
    fn pass_rate_drop_and_new_oracle_flag() {
        let a = corpus(500, true);
        let b = corpus(500, false);
        let report = diff(&a, &b, &DiffConfig::default());
        let kinds: Vec<&str> = report.findings.iter().map(|f| f.kind.as_str()).collect();
        assert!(kinds.contains(&"pass_rate"));
        assert!(kinds.contains(&"new_failing_oracle"));
    }

    #[test]
    fn histogram_divergence_is_flagged_only_past_threshold() {
        let a = corpus(500, true);
        let mut b = Corpus::new();
        for seed in 0..4 {
            let mut r = record("ring", seed, true, 500 + seed);
            // Shift all delivery-latency mass into a far bucket.
            r.hists.insert(
                "net.delivery_latency_us".to_string(),
                vec![(60, 20 + seed), (61, 10)],
            );
            b.insert(r);
        }
        let report = diff(&a, &b, &DiffConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == "histogram" && f.key == "net.delivery_latency_us"));

        // Thin histograms are skipped entirely.
        let cfg = DiffConfig {
            hist_min_count: 1_000_000,
            ..DiffConfig::default()
        };
        let report = diff(&a, &b, &cfg);
        assert!(!report.findings.iter().any(|f| f.kind == "histogram"));
    }

    #[test]
    fn coverage_drift_is_reported() {
        let a = corpus(500, true);
        let mut b = corpus(500, true);
        b.insert(record("extra", 1, true, 100));
        let report = diff(&a, &b, &DiffConfig::default());
        let f = report
            .findings
            .iter()
            .find(|f| f.kind == "coverage")
            .expect("coverage finding");
        assert_eq!(f.scenario, "extra");
        assert_eq!(f.baseline, "absent");
    }

    #[test]
    fn report_json_carries_schema_and_summary() {
        let a = corpus(500, true);
        let b = corpus(900, false);
        let json = diff(&a, &b, &DiffConfig::default()).to_json();
        assert_eq!(json.get("schema").and_then(Json::as_str), Some(DIFF_SCHEMA));
        let summary = json.get("summary").unwrap();
        assert_eq!(summary.get("regressed"), Some(&Json::Bool(true)));
        assert!(summary.get("findings").and_then(Json::as_u64).unwrap() >= 2);
    }
}
