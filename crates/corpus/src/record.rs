//! One seed's run distilled into a typed, content-addressed record.

use crate::fnv1a;
use cb_harness::json::Json;
use cb_harness::scenario::RunReport;
use cb_telemetry::is_wall_key;
use cb_trace::{blame, SpanKind};
use std::collections::BTreeMap;

/// Schema tag of a serialized [`SeedRecord`].
pub const RECORD_SCHEMA: &str = "cb-corpus-record/v1";

/// Everything the corpus keeps from one seed's run: outcome, oracle
/// verdicts, the full (wall-masked) telemetry registry as typed columns,
/// and the provenance blame targets of every violation.
///
/// A record is a pure function of `(scenario, seed, plan)` — wall-clock
/// metrics are blanked at construction — so its content id, and any index
/// built over records, is invariant under ingestion order and campaign
/// worker count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedRecord {
    /// Scenario name.
    pub scenario: String,
    /// The seed that ran.
    pub seed: u64,
    /// Fault-plan spec string the run used.
    pub plan: String,
    /// Whether every oracle passed.
    pub passed: bool,
    /// Trace fingerprint of the run.
    pub fingerprint: u64,
    /// Total simulator events processed.
    pub events: u64,
    /// Oracle verdicts, sorted by name.
    pub oracles: Vec<(String, bool)>,
    /// Telemetry counters (wall keys present but blanked to 0).
    pub counters: BTreeMap<String, u64>,
    /// Telemetry gauges (wall keys present but blanked to 0).
    pub gauges: BTreeMap<String, i64>,
    /// Telemetry histograms as `(log bucket, count)` pairs, ascending
    /// (wall keys present but blanked to empty).
    pub hists: BTreeMap<String, Vec<(u32, u64)>>,
    /// Names of `Decision` spans reachable from the run's `Violation`
    /// spans by the blame walk — the record's regression-triage hook.
    /// Sorted, deduplicated; empty for passing seeds.
    pub blame: Vec<String>,
}

impl SeedRecord {
    /// Distills a campaign run report into a record. The report's
    /// telemetry is masked ([`cb_telemetry::Registry::masked`]) so the
    /// record is deterministic; blame targets come from walking each
    /// synthesised `Violation` span back to the `Decision` spans on its
    /// causal chain.
    pub fn from_report(report: &RunReport) -> SeedRecord {
        let masked = report.telemetry.masked();
        let counters = masked.counters().map(|(k, v)| (k.to_string(), v)).collect();
        let gauges = masked.gauges().map(|(k, v)| (k.to_string(), v)).collect();
        let hists = masked
            .hists()
            .map(|(k, h)| (k.to_string(), h.buckets().collect()))
            .collect();
        let mut oracles: Vec<(String, bool)> = report
            .verdicts
            .iter()
            .map(|v| (v.name.clone(), v.passed))
            .collect();
        oracles.sort();
        let mut targets: std::collections::BTreeSet<String> = Default::default();
        for violation in report
            .provenance
            .iter()
            .filter(|s| s.kind == SpanKind::Violation)
        {
            if let Some(chain) = blame(&report.provenance, violation.id) {
                for span in &chain.chain {
                    if span.kind == SpanKind::Decision {
                        targets.insert(span.name.clone());
                    }
                }
            }
        }
        SeedRecord {
            scenario: report.scenario.clone(),
            seed: report.seed,
            plan: report.plan.to_spec(),
            passed: !report.violated(),
            fingerprint: report.fingerprint,
            events: report.events_processed,
            oracles,
            counters,
            gauges,
            hists,
            blame: targets.into_iter().collect(),
        }
    }

    /// Content id: FNV-64 of the canonical compact JSON rendering. Names
    /// the record's object file and deduplicates re-ingestion.
    pub fn content_id(&self) -> u64 {
        fnv1a(self.to_json().to_string_compact().as_bytes())
    }

    /// Canonical JSON rendering (schema [`RECORD_SCHEMA`]). Key order is
    /// fixed and maps are sorted, so equal records render byte-equal.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters.set(k.as_str(), *v);
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.gauges {
            gauges.set(k.as_str(), Json::Num(*v as f64));
        }
        let mut hists = Json::obj();
        for (k, pairs) in &self.hists {
            hists.set(
                k.as_str(),
                Json::Arr(
                    pairs
                        .iter()
                        .map(|(b, c)| Json::Arr(vec![Json::Num(*b as f64), Json::Num(*c as f64)]))
                        .collect(),
                ),
            );
        }
        Json::obj()
            .with("schema", RECORD_SCHEMA)
            .with("scenario", self.scenario.as_str())
            // Decimal strings: seeds, fingerprints, and content ids use the
            // full u64 range, beyond the f64-backed number type's 2^53.
            .with("seed", self.seed.to_string())
            .with("plan", self.plan.as_str())
            .with("passed", self.passed)
            .with("fingerprint", self.fingerprint.to_string())
            .with("events", self.events)
            .with(
                "oracles",
                Json::Arr(
                    self.oracles
                        .iter()
                        .map(|(name, passed)| {
                            Json::obj()
                                .with("name", name.as_str())
                                .with("passed", *passed)
                        })
                        .collect(),
                ),
            )
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", hists)
            .with("blame", self.blame.clone())
    }

    /// Parses a serialized record (inverse of [`SeedRecord::to_json`]).
    pub fn from_json(json: &Json) -> Result<SeedRecord, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("record missing 'schema'")?;
        if schema != RECORD_SCHEMA {
            return Err(format!(
                "unknown record schema '{schema}' (want '{RECORD_SCHEMA}')"
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record missing '{key}'"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("record missing '{key}'"))
        };
        let mut oracles = Vec::new();
        for o in json
            .get("oracles")
            .and_then(Json::as_array)
            .ok_or("record missing 'oracles'")?
        {
            let name = o
                .get("name")
                .and_then(Json::as_str)
                .ok_or("oracle missing 'name'")?;
            let passed = matches!(o.get("passed"), Some(Json::Bool(true)));
            oracles.push((name.to_string(), passed));
        }
        oracles.sort();
        Ok(SeedRecord {
            scenario: str_field("scenario")?,
            seed: u64_field("seed")?,
            plan: str_field("plan")?,
            passed: matches!(json.get("passed"), Some(Json::Bool(true))),
            fingerprint: u64_field("fingerprint")?,
            events: u64_field("events")?,
            oracles,
            counters: parse_counters(json.get("counters"), false)?,
            gauges: parse_gauges(json.get("gauges"))?,
            hists: parse_hists(json.get("histograms"), false)?,
            blame: json
                .get("blame")
                .and_then(Json::as_array)
                .map(|a| {
                    a.iter()
                        .filter_map(Json::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default(),
        })
    }

    /// Distills a campaign **failure artifact** (`cb-campaign-failure/v1`)
    /// into a record, applying the wall-mask to the artifact's unmasked
    /// telemetry. This is the `corpus ingest` path for artifacts written
    /// by sweeps that did not run with `--corpus`.
    pub fn from_artifact_json(artifact: &Json) -> Result<SeedRecord, String> {
        let schema = artifact
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("artifact missing 'schema'")?;
        if schema != cb_harness::ARTIFACT_SCHEMA {
            return Err(format!("unknown artifact schema '{schema}'"));
        }
        let report = artifact.get("report").ok_or("artifact missing 'report'")?;
        let mut oracles = Vec::new();
        let mut passed = true;
        for o in report
            .get("oracles")
            .and_then(Json::as_array)
            .unwrap_or(&[])
        {
            let name = o
                .get("name")
                .and_then(Json::as_str)
                .ok_or("oracle missing 'name'")?;
            let ok = matches!(o.get("passed"), Some(Json::Bool(true)));
            passed &= ok;
            oracles.push((name.to_string(), ok));
        }
        oracles.sort();
        let telemetry = report
            .get("telemetry")
            .ok_or("report missing 'telemetry'")?;
        // Blame targets from the embedded provenance tail.
        let spans = match report.get("provenance") {
            Some(section) => cb_harness::parse_provenance(section)?,
            None => Vec::new(),
        };
        let mut targets: std::collections::BTreeSet<String> = Default::default();
        for violation in spans.iter().filter(|s| s.kind == SpanKind::Violation) {
            if let Some(chain) = blame(&spans, violation.id) {
                for span in &chain.chain {
                    if span.kind == SpanKind::Decision {
                        targets.insert(span.name.clone());
                    }
                }
            }
        }
        let get_str = |key: &str| -> Result<String, String> {
            report
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("report missing '{key}'"))
        };
        Ok(SeedRecord {
            scenario: get_str("scenario")?,
            seed: report
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("report missing 'seed'")?,
            plan: get_str("plan")?,
            passed,
            fingerprint: report
                .get("fingerprint")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            events: report
                .get("events_processed")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            oracles,
            counters: parse_counters(telemetry.get("counters"), true)?,
            gauges: parse_gauges_masked(telemetry.get("gauges"))?,
            hists: parse_hists(telemetry.get("histograms"), true)?,
            blame: targets.into_iter().collect(),
        })
    }
}

fn parse_counters(
    section: Option<&Json>,
    mask_wall: bool,
) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(entries)) = section {
        for (k, v) in entries {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("counter '{k}' is not a u64"))?;
            let v = if mask_wall && is_wall_key(k) { 0 } else { v };
            out.insert(k.clone(), v);
        }
    }
    Ok(out)
}

fn parse_gauges(section: Option<&Json>) -> Result<BTreeMap<String, i64>, String> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(entries)) = section {
        for (k, v) in entries {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("gauge '{k}' is not a number"))?;
            out.insert(k.clone(), v as i64);
        }
    }
    Ok(out)
}

fn parse_gauges_masked(section: Option<&Json>) -> Result<BTreeMap<String, i64>, String> {
    let mut out = parse_gauges(section)?;
    for (k, v) in out.iter_mut() {
        if is_wall_key(k) {
            *v = 0;
        }
    }
    Ok(out)
}

#[allow(clippy::type_complexity)]
fn parse_hists(
    section: Option<&Json>,
    from_artifact: bool,
) -> Result<BTreeMap<String, Vec<(u32, u64)>>, String> {
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(entries)) = section {
        for (k, v) in entries {
            if from_artifact && is_wall_key(k) {
                out.insert(k.clone(), Vec::new());
                continue;
            }
            // Records store the bucket array directly; artifacts nest it
            // under the histogram summary object (absent for empty hists).
            let buckets = if from_artifact {
                v.get("buckets").and_then(Json::as_array).unwrap_or(&[])
            } else {
                v.as_array().unwrap_or(&[])
            };
            let mut pairs = Vec::with_capacity(buckets.len());
            for pair in buckets {
                let p = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("histogram '{k}': malformed bucket pair"))?;
                let b = p[0]
                    .as_u64()
                    .ok_or_else(|| format!("histogram '{k}': bad bucket index"))?;
                let c = p[1]
                    .as_u64()
                    .ok_or_else(|| format!("histogram '{k}': bad bucket count"))?;
                pairs.push((b as u32, c));
            }
            out.insert(k.clone(), pairs);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_harness::prelude::*;
    use cb_harness::toy::RingScenario;

    fn failing_report() -> RunReport {
        let s = RingScenario::default();
        let others: Vec<u32> = (0..8u32).filter(|&i| i != 3).collect();
        let plan = FaultPlan::none().partition(&[3], &others, 0, None);
        s.run(40, &plan)
    }

    #[test]
    fn record_round_trips_through_json() {
        let report = failing_report();
        assert!(report.violated());
        let record = SeedRecord::from_report(&report);
        assert!(!record.passed);
        assert!(!record.counters.is_empty());
        let back = SeedRecord::from_json(&record.to_json()).expect("parse");
        assert_eq!(back, record);
        assert_eq!(back.content_id(), record.content_id());
    }

    #[test]
    fn record_is_deterministic_across_reruns() {
        let a = SeedRecord::from_report(&failing_report());
        let b = SeedRecord::from_report(&failing_report());
        assert_eq!(a, b);
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact()
        );
    }

    #[test]
    fn wall_metrics_are_blanked() {
        let record = SeedRecord::from_report(&failing_report());
        for (k, v) in &record.counters {
            if cb_telemetry::is_wall_key(k) {
                assert_eq!(*v, 0, "wall counter '{k}' not masked");
            }
        }
        for (k, pairs) in &record.hists {
            if cb_telemetry::is_wall_key(k) {
                assert!(pairs.is_empty(), "wall histogram '{k}' not masked");
            }
        }
    }

    #[test]
    fn artifact_ingestion_matches_in_process_distillation() {
        let report = failing_report();
        let artifact = cb_harness::artifact_json(&report, &report.plan, &report);
        let from_artifact = SeedRecord::from_artifact_json(&artifact).expect("ingest");
        let from_report = SeedRecord::from_report(&report);
        assert_eq!(from_artifact, from_report);
    }

    #[test]
    fn failing_record_names_blame_targets() {
        use cb_trace::{Span, SpanId};
        // The ring toy makes no runtime decisions, so plant a Decision span
        // on the violation's causal chain and check the blame walk finds it.
        let mut report = failing_report();
        let d_id = SpanId {
            at_ns: 10,
            node: 0,
            seq: 90_001,
        };
        let v_id = SpanId {
            at_ns: 20,
            node: u32::MAX,
            seq: 90_002,
        };
        report.provenance.push(Span::new(
            d_id,
            SpanKind::Decision,
            "decide:ring.next_hop",
            vec![],
        ));
        report.provenance.push(Span::new(
            v_id,
            SpanKind::Violation,
            "violation:planted",
            vec![d_id],
        ));
        let record = SeedRecord::from_report(&report);
        assert!(record.blame.contains(&"decide:ring.next_hop".to_string()));

        let passing = {
            let s = RingScenario::default();
            s.run(1, &FaultPlan::none())
        };
        assert!(!passing.violated());
        let record = SeedRecord::from_report(&passing);
        assert!(record.passed);
        assert!(record.blame.is_empty());
    }
}
