//! The on-disk corpus: content-addressed record objects plus a
//! deterministic, checksummed binary index.
//!
//! Layout under a corpus directory:
//!
//! ```text
//! corpus/
//!   index.cbc            # binary index, see below
//!   objects/
//!     <content_id:016x>.json   # canonical record JSON, write-once
//! ```
//!
//! The index interns every string into a sorted table and stores each
//! record as typed columns (u32 string refs, LE integers, bucket pairs),
//! ending with an FNV-64 checksum of everything before it — the same
//! trailer discipline as the policy pile. Records live in a `BTreeMap`
//! keyed `(scenario, seed, content_id)`, so index bytes are a pure
//! function of the record *set*: ingestion order and campaign worker
//! count cannot change them.

use crate::fnv1a;
use crate::record::{SeedRecord, RECORD_SCHEMA};
use cb_harness::campaign::CampaignOutcome;
use cb_harness::json::Json;
use cb_harness::scenario::RunReport;
use std::collections::BTreeMap;
use std::path::Path;

/// File name of the binary index inside a corpus directory.
pub const INDEX_FILE: &str = "index.cbc";

/// Magic bytes opening the index file.
pub const INDEX_MAGIC: &[u8; 8] = b"CBCORP1\n";

const INDEX_VERSION: u32 = 1;

/// Error from corpus load/save/ingest.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Bad bytes: wrong magic, truncated column, checksum mismatch, or an
    /// artifact/record that does not parse.
    Malformed(String),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "io: {e}"),
            CorpusError::Malformed(m) => write!(f, "malformed corpus: {m}"),
        }
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> CorpusError {
    CorpusError::Malformed(msg.into())
}

/// An in-memory corpus of [`SeedRecord`]s with set semantics.
///
/// Inserting the same record twice is a no-op (records are keyed by
/// content id), so re-ingesting a campaign, ingesting in any order, or
/// ingesting from any number of workers converges on identical state.
#[derive(Default, Clone)]
pub struct Corpus {
    records: BTreeMap<(String, u64, u64), SeedRecord>,
}

impl Corpus {
    /// Empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Inserts one record (idempotent). Returns `true` if it was new.
    pub fn insert(&mut self, record: SeedRecord) -> bool {
        let key = (record.scenario.clone(), record.seed, record.content_id());
        self.records.insert(key, record).is_none()
    }

    /// Sorted iteration: by scenario, then seed, then content id.
    pub fn iter(&self) -> impl Iterator<Item = &SeedRecord> {
        self.records.values()
    }

    /// Distills and inserts one run report. Returns `true` if new.
    pub fn ingest_report(&mut self, report: &RunReport) -> bool {
        self.insert(SeedRecord::from_report(report))
    }

    /// Ingests every retained report of a campaign outcome (requires the
    /// campaign to have run with `keep_reports`). Returns how many records
    /// were new.
    pub fn ingest_outcome(&mut self, outcome: &CampaignOutcome) -> usize {
        outcome
            .reports
            .iter()
            .filter(|r| self.ingest_report(r))
            .count()
    }

    /// Ingests every `*.json` file in `dir` (non-recursive, sorted by file
    /// name — though order cannot matter). Accepts campaign failure
    /// artifacts (`cb-campaign-failure/v1`) and corpus records
    /// (`cb-corpus-record/v1`). Returns how many records were new.
    pub fn ingest_dir(&mut self, dir: &Path) -> Result<usize, CorpusError> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json") && p.is_file())
            .collect();
        paths.sort();
        let mut fresh = 0;
        for path in paths {
            let text = std::fs::read_to_string(&path)?;
            let json =
                Json::parse(&text).map_err(|e| malformed(format!("{}: {e}", path.display())))?;
            let record = match json.get("schema").and_then(Json::as_str) {
                Some(RECORD_SCHEMA) => SeedRecord::from_json(&json),
                Some(s) if s == cb_harness::ARTIFACT_SCHEMA => {
                    SeedRecord::from_artifact_json(&json)
                }
                other => Err(format!("unrecognized schema {other:?}")),
            }
            .map_err(|e| malformed(format!("{}: {e}", path.display())))?;
            if self.insert(record) {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// The deterministic binary index: magic, version, interned string
    /// table, typed record columns, FNV-64 trailer.
    pub fn index_bytes(&self) -> Vec<u8> {
        // Intern every string the records reference, sorted.
        let mut table: std::collections::BTreeSet<&str> = Default::default();
        for r in self.records.values() {
            table.insert(&r.scenario);
            table.insert(&r.plan);
            for (name, _) in &r.oracles {
                table.insert(name);
            }
            for k in r.counters.keys() {
                table.insert(k);
            }
            for k in r.gauges.keys() {
                table.insert(k);
            }
            for k in r.hists.keys() {
                table.insert(k);
            }
            for b in &r.blame {
                table.insert(b);
            }
        }
        let strings: Vec<&str> = table.into_iter().collect();
        let idx_of: std::collections::HashMap<&str, u32> = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, i as u32))
            .collect();

        let mut out = Vec::new();
        out.extend_from_slice(INDEX_MAGIC);
        put_u32(&mut out, INDEX_VERSION);
        put_u32(&mut out, strings.len() as u32);
        for s in &strings {
            put_u32(&mut out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        put_u32(&mut out, self.records.len() as u32);
        for r in self.records.values() {
            put_u32(&mut out, idx_of[r.scenario.as_str()]);
            put_u64(&mut out, r.seed);
            put_u64(&mut out, r.content_id());
            put_u64(&mut out, r.fingerprint);
            put_u64(&mut out, r.events);
            put_u32(&mut out, idx_of[r.plan.as_str()]);
            out.push(r.passed as u8);
            put_u32(&mut out, r.oracles.len() as u32);
            for (name, passed) in &r.oracles {
                put_u32(&mut out, idx_of[name.as_str()]);
                out.push(*passed as u8);
            }
            put_u32(&mut out, r.counters.len() as u32);
            for (k, v) in &r.counters {
                put_u32(&mut out, idx_of[k.as_str()]);
                put_u64(&mut out, *v);
            }
            put_u32(&mut out, r.gauges.len() as u32);
            for (k, v) in &r.gauges {
                put_u32(&mut out, idx_of[k.as_str()]);
                put_u64(&mut out, *v as u64);
            }
            put_u32(&mut out, r.hists.len() as u32);
            for (k, pairs) in &r.hists {
                put_u32(&mut out, idx_of[k.as_str()]);
                put_u32(&mut out, pairs.len() as u32);
                for (b, c) in pairs {
                    put_u32(&mut out, *b);
                    put_u64(&mut out, *c);
                }
            }
            put_u32(&mut out, r.blame.len() as u32);
            for b in &r.blame {
                put_u32(&mut out, idx_of[b.as_str()]);
            }
        }
        let sum = fnv1a(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Decodes an index produced by [`Corpus::index_bytes`].
    pub fn from_index_bytes(bytes: &[u8]) -> Result<Corpus, CorpusError> {
        if bytes.len() < INDEX_MAGIC.len() + 4 + 8 {
            return Err(malformed("index too short"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let want = u64::from_le_bytes(trailer.try_into().unwrap());
        let got = fnv1a(body);
        if want != got {
            return Err(malformed(format!(
                "checksum mismatch: trailer {want:#018x}, content {got:#018x}"
            )));
        }
        let mut cur = Cursor {
            bytes: body,
            pos: 0,
        };
        if cur.take(INDEX_MAGIC.len())? != INDEX_MAGIC {
            return Err(malformed("bad magic"));
        }
        let version = cur.u32()?;
        if version != INDEX_VERSION {
            return Err(malformed(format!("unsupported index version {version}")));
        }
        let n_strings = cur.u32()? as usize;
        let mut strings = Vec::with_capacity(n_strings);
        for _ in 0..n_strings {
            let len = cur.u32()? as usize;
            let raw = cur.take(len)?;
            strings.push(
                std::str::from_utf8(raw)
                    .map_err(|_| malformed("non-utf8 interned string"))?
                    .to_string(),
            );
        }
        let lookup = |i: u32| -> Result<&String, CorpusError> {
            strings
                .get(i as usize)
                .ok_or_else(|| malformed(format!("string ref {i} out of range")))
        };
        let n_records = cur.u32()? as usize;
        let mut corpus = Corpus::new();
        for _ in 0..n_records {
            let scenario = lookup(cur.u32()?)?.clone();
            let seed = cur.u64()?;
            let content_id = cur.u64()?;
            let fingerprint = cur.u64()?;
            let events = cur.u64()?;
            let plan = lookup(cur.u32()?)?.clone();
            let passed = cur.u8()? != 0;
            let mut oracles = Vec::new();
            for _ in 0..cur.u32()? {
                let name = lookup(cur.u32()?)?.clone();
                oracles.push((name, cur.u8()? != 0));
            }
            let mut counters = BTreeMap::new();
            for _ in 0..cur.u32()? {
                let k = lookup(cur.u32()?)?.clone();
                counters.insert(k, cur.u64()?);
            }
            let mut gauges = BTreeMap::new();
            for _ in 0..cur.u32()? {
                let k = lookup(cur.u32()?)?.clone();
                gauges.insert(k, cur.u64()? as i64);
            }
            let mut hists = BTreeMap::new();
            for _ in 0..cur.u32()? {
                let k = lookup(cur.u32()?)?.clone();
                let n_pairs = cur.u32()? as usize;
                let mut pairs = Vec::with_capacity(n_pairs);
                for _ in 0..n_pairs {
                    let b = cur.u32()?;
                    pairs.push((b, cur.u64()?));
                }
                hists.insert(k, pairs);
            }
            let mut blame = Vec::new();
            for _ in 0..cur.u32()? {
                blame.push(lookup(cur.u32()?)?.clone());
            }
            let record = SeedRecord {
                scenario,
                seed,
                plan,
                passed,
                fingerprint,
                events,
                oracles,
                counters,
                gauges,
                hists,
                blame,
            };
            if record.content_id() != content_id {
                return Err(malformed(format!(
                    "content id mismatch for {}/{}: stored {content_id:#018x}",
                    record.scenario, record.seed
                )));
            }
            corpus.insert(record);
        }
        if cur.pos != body.len() {
            return Err(malformed("trailing bytes after last record"));
        }
        Ok(corpus)
    }

    /// Writes `index.cbc` and one object file per record under `dir`
    /// (created if absent). Object files are write-once: an existing
    /// `objects/<cid>.json` is left untouched, since equal content ids
    /// imply equal bytes.
    pub fn save(&self, dir: &Path) -> Result<(), CorpusError> {
        let objects = dir.join("objects");
        std::fs::create_dir_all(&objects)?;
        for r in self.records.values() {
            let path = objects.join(format!("{:016x}.json", r.content_id()));
            if !path.exists() {
                std::fs::write(&path, r.to_json().to_string_pretty() + "\n")?;
            }
        }
        std::fs::write(dir.join(INDEX_FILE), self.index_bytes())?;
        Ok(())
    }

    /// Loads a corpus from `dir`'s `index.cbc`.
    pub fn load(dir: &Path) -> Result<Corpus, CorpusError> {
        let bytes = std::fs::read(dir.join(INDEX_FILE))?;
        Corpus::from_index_bytes(&bytes)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CorpusError> {
        if self.pos + n > self.bytes.len() {
            return Err(malformed("truncated index"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CorpusError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CorpusError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CorpusError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_harness::prelude::*;
    use cb_harness::toy::RingScenario;

    fn reports(seeds: std::ops::Range<u64>) -> Vec<RunReport> {
        let s = RingScenario::default();
        seeds.map(|seed| s.run(seed, &FaultPlan::none())).collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cb-corpus-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn index_round_trips_and_checksum_guards() {
        let mut corpus = Corpus::new();
        for r in reports(0..4) {
            assert!(corpus.ingest_report(&r));
        }
        assert_eq!(corpus.len(), 4);
        let bytes = corpus.index_bytes();
        let back = Corpus::from_index_bytes(&bytes).expect("round trip");
        assert_eq!(back.len(), 4);
        assert_eq!(back.index_bytes(), bytes);

        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        assert!(matches!(
            Corpus::from_index_bytes(&corrupt),
            Err(CorpusError::Malformed(_))
        ));
    }

    #[test]
    fn insertion_is_idempotent_and_order_invariant() {
        let rs = reports(0..5);
        let mut forward = Corpus::new();
        for r in &rs {
            forward.ingest_report(r);
        }
        let mut backward = Corpus::new();
        for r in rs.iter().rev() {
            backward.ingest_report(r);
            backward.ingest_report(r); // duplicate: no-op
        }
        assert_eq!(forward.len(), backward.len());
        assert_eq!(forward.index_bytes(), backward.index_bytes());
    }

    #[test]
    fn save_load_and_reingest_objects() {
        let dir = temp_dir("saveload");
        let mut corpus = Corpus::new();
        for r in reports(0..3) {
            corpus.ingest_report(&r);
        }
        corpus.save(&dir).expect("save");
        let loaded = Corpus::load(&dir).expect("load");
        assert_eq!(loaded.index_bytes(), corpus.index_bytes());

        // The objects directory re-ingests to the same corpus.
        let mut from_objects = Corpus::new();
        let fresh = from_objects
            .ingest_dir(&dir.join("objects"))
            .expect("ingest");
        assert_eq!(fresh, 3);
        assert_eq!(from_objects.index_bytes(), corpus.index_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingests_campaign_failure_artifacts() {
        let dir = temp_dir("artifacts");
        let s = RingScenario::default();
        let others: Vec<u32> = (0..8u32).filter(|&i| i != 3).collect();
        let plan = FaultPlan::none().partition(&[3], &others, 0, None);
        let report = s.run(77, &plan);
        assert!(report.violated());
        cb_harness::campaign::write_artifact(&dir, &report, &report.plan, &report).unwrap();

        let mut corpus = Corpus::new();
        assert_eq!(corpus.ingest_dir(&dir).expect("ingest"), 1);
        let rec = corpus.iter().next().unwrap();
        assert_eq!(rec.seed, 77);
        assert!(!rec.passed);

        // Same run ingested in-process lands on the same record.
        let mut direct = Corpus::new();
        direct.ingest_report(&report);
        assert_eq!(direct.index_bytes(), corpus.index_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
