//! # cb-corpus — the queryable campaign corpus
//!
//! Campaigns emit rich per-seed artifacts — telemetry counters and
//! log-bucket histograms, oracle verdicts, governor dwell times, policy
//! hit rates, workload goodput, provenance blame targets — but each one is
//! a write-once JSON blob. This crate turns thousands of such blobs into
//! leverage (ROADMAP item 4):
//!
//! * [`record`] — a [`SeedRecord`]: one seed's outcome distilled into
//!   typed columns, content-addressed by the FNV-64 of its canonical
//!   (wall-masked) JSON rendering.
//! * [`store`] — the [`Corpus`]: an on-disk store with content-addressed
//!   record objects under `objects/` and a deterministic binary columnar
//!   index (`index.cbc`, checksummed like the policy pile format). The
//!   index bytes are invariant under ingestion order and campaign worker
//!   count.
//! * [`query`] — [`Predicate`] combinators plus a small text syntax that
//!   answer the roadmap's canonical questions, e.g.
//!   `hist_count(core.governor.in_survival_sim_ns) >= 2` ("all seeds
//!   where the governor hit Survival at least twice") and
//!   [`top_blame`] ("blame targets shared by ≥3 violating seeds").
//! * [`diff`] — compares two campaigns' telemetry distributions (counter
//!   deltas with noise thresholds, log-bucket histogram divergence,
//!   pass-rate drops, newly failing oracles) into a deterministic
//!   regression report: `diff(A, A)` is always empty.
//!
//! The determinism discipline matches the rest of the workspace: every
//! wall-clock metric (name containing [`cb_telemetry::WALL_MARKER`]) is
//! masked at ingestion, so records — and therefore index and diff bytes —
//! are pure functions of `(scenario, seed, plan)`.

#![warn(missing_docs)]

pub mod diff;
pub mod query;
pub mod record;
pub mod store;

pub use diff::{diff, DiffConfig, DiffReport, Finding, DIFF_SCHEMA};
pub use query::{parse_predicate, select, top_blame, BlameTally, Cmp, Predicate};
pub use record::{SeedRecord, RECORD_SCHEMA};
pub use store::{Corpus, CorpusError, INDEX_FILE, INDEX_MAGIC};

/// FNV-1a 64-bit hash — the workspace's convention for content ids.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
