//! Policy pile round-trip contract over the full scenario registry.
//!
//! The `--record-policy` pile is a cross-run artifact: it must survive
//! save → load → save with byte-identical output for every scenario the
//! bench registry knows, and a loaded pile must compare equal to the one
//! that was written — content id included.

use cb_bench::registry;
use cb_policy::{PolicyEntry, PolicyKey, PolicyPile, PolicyStore};

/// A deterministic synthetic store exercising several keys per scenario.
fn synthetic_store(scenario: &str, salt: u64) -> PolicyStore {
    let mut store = PolicyStore::new(scenario);
    for i in 0..5u64 {
        let key = PolicyKey::for_choice(
            &format!("{scenario}.choice{i}"),
            salt.wrapping_mul(31).wrapping_add(i),
            cb_policy::mix64(salt ^ i),
        );
        let entry = PolicyEntry::new(i % 3, (i as f64) * 0.25 - 0.5, i % 2, 40 + i);
        assert!(store.insert(key, entry), "fresh key must insert");
    }
    store
}

#[test]
fn pile_round_trips_byte_identically_for_every_registered_scenario() {
    let names = registry::scenario_names();
    assert!(!names.is_empty(), "registry is empty");
    let mut pile = PolicyPile::new();
    for (i, name) in names.iter().enumerate() {
        pile.insert_store(synthetic_store(name, i as u64 + 1));
    }
    assert_eq!(pile.len(), names.len());
    assert_eq!(pile.total_entries(), names.len() * 5);

    let dir = std::env::temp_dir().join(format!("cb-policy-pile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("registry.cbp");

    pile.save(&path).expect("save");
    let first = std::fs::read(&path).expect("read saved pile");
    let loaded = PolicyPile::load(&path).expect("load");
    assert_eq!(loaded, pile, "loaded pile differs from the saved one");
    assert_eq!(loaded.content_id(), pile.content_id());

    loaded.save(&path).expect("re-save");
    let second = std::fs::read(&path).expect("read re-saved pile");
    assert_eq!(first, second, "save -> load -> save is not byte-identical");
    for name in &names {
        assert!(
            loaded.get(name).is_some(),
            "scenario {name} lost in transit"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merged_pile_bytes_are_insertion_order_invariant() {
    let names = registry::scenario_names();
    let mut forward = PolicyPile::new();
    for (i, name) in names.iter().enumerate() {
        forward.insert_store(synthetic_store(name, i as u64 + 1));
    }
    let mut reverse = PolicyPile::new();
    for (i, name) in names.iter().enumerate().rev() {
        reverse.insert_store(synthetic_store(name, i as u64 + 1));
    }
    assert_eq!(forward.to_bytes(), reverse.to_bytes());
    assert_eq!(forward.content_id(), reverse.content_id());
}

#[test]
fn truncated_pile_is_rejected_not_misread() {
    let mut pile = PolicyPile::new();
    pile.insert_store(synthetic_store("kv", 7));
    let bytes = pile.to_bytes();
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            PolicyPile::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} bytes must not parse"
        );
    }
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    assert!(
        PolicyPile::from_bytes(&corrupt).is_err(),
        "checksum corruption must not parse"
    );
}
