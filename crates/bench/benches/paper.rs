//! Criterion benches, one group per paper artifact.
//!
//! These measure the cost of the building blocks behind each experiment at
//! reduced sizes (full-size tables come from the `tables` binary — see
//! `EXPERIMENTS.md`). Groups:
//!
//! * `code_metrics` (E1) — the source analyzer itself.
//! * `randtree_join` / `randtree_rejoin` (E2/E3) — whole-scenario runs per
//!   arm.
//! * `gossip_strategies` (E4) — a dissemination run per strategy.
//! * `dissem_strategies` / `tracker_bias` (E5/E6) — a swarm run per
//!   strategy / tracker policy.
//! * `paxos_proposer` (E7) — a consensus run per regime.
//! * `prediction_depth` (E8) — BFS vs consequence prediction per depth.
//! * `resolver_latency` (E10) — a single choice resolution per resolver.

use cb_bench::codemetrics;
use cb_bench::models::Flood;
use cb_core::choice::{ChoiceRequest, NullEvaluator, OptionDesc, Prediction, Resolver};
use cb_core::objective::ObjectiveSet;
use cb_core::predict::{ModelEvaluator, PredictConfig};
use cb_core::resolve::{
    BanditPolicy, CachedResolver, LearnedResolver, LookaheadResolver, RandomResolver,
};
use cb_dissem::{run_swarm, BlockStrategy, SwarmConfig, TrackerPolicy};
use cb_gossip::{run_gossip, GossipConfig, PeerStrategy};
use cb_mck::explore::ExploreConfig;
use cb_paxos::{run_paxos, PaxosConfig, ProposerRegime};
use cb_randtree::{run_failure_rejoin, run_join, ScenarioConfig, Setup};
use cb_simnet::rng::SimRng;
use cb_simnet::time::SimDuration;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn small_group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g
}

fn bench_code_metrics(c: &mut Criterion) {
    c.bench_function("code_metrics/analyze_both", |b| {
        b.iter(|| {
            let (base, choice) = codemetrics::e1_metrics();
            black_box((base.loc, choice.ifs_per_handler()))
        })
    });
}

fn bench_randtree(c: &mut Criterion) {
    let mut g = small_group(c, "randtree_join");
    for setup in Setup::ALL {
        g.bench_function(setup.label(), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let cfg = ScenarioConfig {
                    nodes: 9,
                    seed,
                    ..Default::default()
                };
                black_box(run_join(&cfg, setup).after_join.max_depth)
            })
        });
    }
    g.finish();
    let mut g = small_group(c, "randtree_rejoin");
    for setup in Setup::ALL {
        g.bench_function(setup.label(), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let cfg = ScenarioConfig {
                    nodes: 9,
                    seed,
                    ..Default::default()
                };
                black_box(
                    run_failure_rejoin(&cfg, setup)
                        .after_rejoin
                        .map(|s| s.max_depth),
                )
            })
        });
    }
    g.finish();
}

fn bench_gossip(c: &mut Criterion) {
    let mut g = small_group(c, "gossip_strategies");
    for strategy in [
        PeerStrategy::Restricted,
        PeerStrategy::FreeRandom,
        PeerStrategy::Resolved,
    ] {
        g.bench_function(strategy.label(), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let cfg = GossipConfig {
                    nodes: 16,
                    rumors: 3,
                    horizon: SimDuration::from_secs(20),
                    seed,
                    ..Default::default()
                };
                black_box(run_gossip(&cfg, strategy).coverage)
            })
        });
    }
    g.finish();
}

fn bench_dissem(c: &mut Criterion) {
    let mut g = small_group(c, "dissem_strategies");
    for strategy in [
        BlockStrategy::Random,
        BlockStrategy::RarestRandom,
        BlockStrategy::Resolved,
    ] {
        g.bench_function(strategy.label(), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let cfg = SwarmConfig {
                    peers: 10,
                    blocks: 16,
                    degree: 4,
                    horizon: SimDuration::from_secs(120),
                    seed,
                    ..Default::default()
                };
                black_box(run_swarm(&cfg, strategy).completed)
            })
        });
    }
    g.finish();
    let mut g = small_group(c, "tracker_bias");
    for policy in [
        TrackerPolicy::Random,
        TrackerPolicy::LocalityBiased {
            local_fraction: 0.8,
        },
    ] {
        g.bench_function(policy.label(), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let cfg = SwarmConfig {
                    peers: 12,
                    blocks: 16,
                    degree: 4,
                    tracker: policy,
                    horizon: SimDuration::from_secs(120),
                    seed,
                    ..Default::default()
                };
                black_box(run_swarm(&cfg, BlockStrategy::RarestRandom).transit_bytes)
            })
        });
    }
    g.finish();
}

fn bench_paxos(c: &mut Criterion) {
    let mut g = small_group(c, "paxos_proposer");
    for regime in [
        ProposerRegime::FixedLeader,
        ProposerRegime::RoundRobin,
        ProposerRegime::Resolved,
    ] {
        g.bench_function(regime.label(), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let cfg = PaxosConfig {
                    clients: 4,
                    commands_per_client: 10,
                    horizon: SimDuration::from_secs(60),
                    seed,
                    ..Default::default()
                };
                black_box(run_paxos(&cfg, regime).committed)
            })
        });
    }
    g.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let mut g = c.benchmark_group("prediction_depth");
    let sys = Flood { n: 8, fanout: 2 };
    for depth in [2usize, 4, 6] {
        let cfg = ExploreConfig {
            max_depth: depth,
            max_states: 2_000_000,
            ..Default::default()
        };
        g.bench_function(format!("bfs/depth{depth}"), |b| {
            b.iter(|| black_box(cb_mck::explore::bfs(&sys, &[], &cfg).states_visited))
        });
        g.bench_function(format!("consequence/depth{depth}"), |b| {
            b.iter(|| {
                black_box(
                    cb_mck::consequence::predict(&sys, &[], &cfg)
                        .report
                        .states_visited,
                )
            })
        });
    }
    g.finish();
}

/// A drifting counter; option index sets the per-step increment.
#[derive(Clone)]
struct DriftSys {
    bias: i64,
}

impl cb_mck::system::TransitionSystem for DriftSys {
    type State = i64;
    type Action = i64;
    fn initial(&self) -> i64 {
        0
    }
    fn actions(&self, s: &i64) -> Vec<i64> {
        vec![s + self.bias]
    }
    fn step(&self, _s: &i64, a: &i64) -> i64 {
        *a
    }
}

fn bench_resolvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("resolver_latency");
    let options: Vec<OptionDesc> = (0..4).map(OptionDesc::key).collect();
    let req = ChoiceRequest::new("bench", &options);
    g.bench_function("random", |b| {
        let mut r = RandomResolver::new(1);
        b.iter(|| black_box(r.resolve(&req, &mut NullEvaluator)))
    });
    g.bench_function("learned_ucb1", |b| {
        let mut r = LearnedResolver::new(BanditPolicy::Ucb1 { c: 1.0 }, 1);
        b.iter(|| black_box(r.resolve(&req, &mut NullEvaluator)))
    });
    let objectives: ObjectiveSet<i64> =
        ObjectiveSet::new().maximize("value", 1.0, |s: &i64| *s as f64);
    g.bench_function("lookahead_depth4", |b| {
        let mut r = LookaheadResolver::new();
        let mut rng = SimRng::seed_from(1);
        b.iter_batched(
            || rng.fork(),
            |fork| {
                let mut eval = ModelEvaluator::new(
                    |i| DriftSys { bias: i as i64 },
                    &objectives,
                    PredictConfig {
                        depth: 4,
                        walks: 8,
                        ..Default::default()
                    },
                    fork,
                );
                black_box(r.resolve(&req, &mut eval))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cached_lookahead", |b| {
        let mut r = CachedResolver::new(LookaheadResolver::new(), 1024);
        let mut rng = SimRng::seed_from(1);
        b.iter_batched(
            || rng.fork(),
            |fork| {
                let mut eval = ModelEvaluator::new(
                    |i| DriftSys { bias: i as i64 },
                    &objectives,
                    PredictConfig {
                        depth: 4,
                        walks: 8,
                        ..Default::default()
                    },
                    fork,
                );
                black_box(r.resolve(&req, &mut eval))
            },
            BatchSize::SmallInput,
        )
    });
    let _ = Prediction::unknown();
    g.finish();
}

criterion_group!(
    benches,
    bench_code_metrics,
    bench_randtree,
    bench_gossip,
    bench_dissem,
    bench_paxos,
    bench_prediction,
    bench_resolvers
);
criterion_main!(benches);
