//! Synthetic transition systems used by the prediction benchmarks (E8).

use cb_mck::system::TransitionSystem;
use std::collections::BTreeSet;

/// A flooding broadcast over `n` nodes arranged in a ring with `fanout`
/// forward neighbors: node 0 starts with the datum; delivering it to a new
/// node enables that node's forwards (a causal chain), while deliveries to
/// *different* nodes are independent events whose interleavings blow up an
/// exhaustive search. This is the shape consequence prediction was designed
/// to exploit.
#[derive(Clone, Debug)]
pub struct Flood {
    /// Number of nodes.
    pub n: usize,
    /// Forward neighbors per node (ring successors).
    pub fanout: usize,
}

/// Flood state: who has the datum, and which (from, to) sends are pending.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct FloodState {
    /// Receipt flags per node.
    pub received: Vec<bool>,
    /// Pending deliveries, kept sorted for determinism.
    pub pending: BTreeSet<(u16, u16)>,
}

/// One delivery event.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct Deliver(pub u16, pub u16);

impl Flood {
    fn forwards(&self, node: u16) -> Vec<(u16, u16)> {
        (1..=self.fanout as u16)
            .map(|k| (node, (node + k) % self.n as u16))
            .collect()
    }
}

impl TransitionSystem for Flood {
    type State = FloodState;
    type Action = Deliver;

    fn initial(&self) -> FloodState {
        let mut received = vec![false; self.n];
        received[0] = true;
        FloodState {
            received,
            pending: self.forwards(0).into_iter().collect(),
        }
    }

    fn actions(&self, s: &FloodState) -> Vec<Deliver> {
        s.pending.iter().map(|&(f, t)| Deliver(f, t)).collect()
    }

    fn step(&self, s: &FloodState, a: &Deliver) -> FloodState {
        let mut next = s.clone();
        next.pending.remove(&(a.0, a.1));
        if !next.received[a.1 as usize] {
            next.received[a.1 as usize] = true;
            for fw in self.forwards(a.1) {
                next.pending.insert(fw);
            }
        }
        next
    }

    fn locus(&self, a: &Deliver) -> usize {
        a.1 as usize
    }
}

/// Fraction of nodes that have received the datum.
pub fn flood_coverage(s: &FloodState) -> f64 {
    s.received.iter().filter(|&&r| r).count() as f64 / s.received.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_mck::explore::{bfs, ExploreConfig};
    use cb_mck::props::Property;

    #[test]
    fn initial_state_has_source_and_its_sends() {
        let sys = Flood { n: 6, fanout: 2 };
        let s = sys.initial();
        assert!(s.received[0]);
        assert_eq!(s.pending.len(), 2);
        assert_eq!(flood_coverage(&s), 1.0 / 6.0);
    }

    #[test]
    fn delivery_spreads_and_enables_forwards() {
        let sys = Flood { n: 6, fanout: 2 };
        let s0 = sys.initial();
        let s1 = sys.step(&s0, &Deliver(0, 1));
        assert!(s1.received[1]);
        assert!(s1.pending.contains(&(1, 2)));
        assert!(s1.pending.contains(&(1, 3)));
        // Re-delivery to an already-infected node enables nothing new.
        let s2 = sys.step(&s1, &Deliver(0, 2));
        let s3 = sys.step(&s2, &Deliver(1, 2));
        assert!(s3.received[2]);
    }

    #[test]
    fn full_coverage_is_reachable_within_depth() {
        let sys = Flood { n: 5, fanout: 2 };
        let props = [Property::safety("not everyone has it", |s: &FloodState| {
            flood_coverage(s) < 1.0
        })];
        let r = bfs(
            &sys,
            &props,
            &ExploreConfig {
                max_depth: 8,
                max_states: 200_000,
                ..Default::default()
            },
        );
        assert!(!r.safe(), "full coverage must be reachable");
    }

    #[test]
    fn consequence_prunes_flood_interleavings() {
        let sys = Flood { n: 8, fanout: 2 };
        let cfg = ExploreConfig {
            max_depth: 6,
            max_states: 1_000_000,
            ..Default::default()
        };
        let full = bfs(&sys, &[], &cfg);
        let chains = cb_mck::consequence::predict(&sys, &[], &cfg);
        assert!(
            chains.report.states_visited * 2 < full.states_visited,
            "consequence {} vs bfs {}",
            chains.report.states_visited,
            full.states_visited
        );
    }
}
