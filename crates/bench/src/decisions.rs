//! The decision hot-path benchmark (`decisions` binary, `BENCH_decision.json`).
//!
//! The paper's bet is that choice resolution runs "on the side without
//! stalling the system" (§3.4) — which makes *predicted states per resolved
//! decision* the runtime's hot-path cost. This module drives that hot path
//! for one representative predictive decision per registered scenario
//! (randtree / gossip / paxos / dissem / ring) in two modes:
//!
//! * **baseline** — the pre-fusion three-pass evaluation
//!   ([`ModelEvaluator::evaluate_multipass`]): violation search, walks, and
//!   a dedicated liveness BFS, with no memoization;
//! * **optimized** — the fused single pass ([`OptionEvaluator::evaluate`]):
//!   one violation+liveness search plus walks, with the per-decision
//!   [`EvalCache`] memoizing property verdicts and objective scores across
//!   sibling options.
//!
//! Costs are **deterministic**: states explored per decision, converted to
//! sim-cost at the runtime's modeled rate of 1 µs per state (the same
//! convention `choose_with` records into `core.decision_latency_sim_us`).
//! No wall-clock numbers enter the artifact, so `BENCH_decision.json` is
//! byte-stable across machines and replayable in CI.
//!
//! The workloads reuse the real predictive models where the workspace has
//! them (RandTree's [`JoinDescent`], the gossip [`Flood`] used by E8) and
//! small protocol-shaped systems defined here for the rest (a Paxos-style
//! quorum race, block dissemination, a token ring).
//!
//! [`EvalCache`]: cb_core::evalcache::EvalCache
//! [`OptionEvaluator::evaluate`]: cb_core::choice::OptionEvaluator::evaluate

use crate::models::{flood_coverage, Flood};
use cb_core::choice::{ChoiceRequest, OptionDesc, OptionEvaluator, Prediction, Resolver};
use cb_core::governor::HealthSignals;
use cb_core::objective::ObjectiveSet;
use cb_core::predict::{ModelEvaluator, PredictConfig};
use cb_core::resolve::ladder::{LadderResolver, PolicyDisposition};
use cb_harness::json::Json;
use cb_mck::props::Property;
use cb_mck::system::TransitionSystem;
use cb_policy::PolicyStore;
use cb_randtree::{attach_depth, JState, JoinDescent, TreeCheckpoint};
use cb_simnet::rng::SimRng;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Aggregate cost of running one mode over a scenario's decision stream.
#[derive(Clone, Debug, Default)]
pub struct ModeStats {
    /// States explored, summed over every option of every decision.
    pub total_states: u64,
    /// Evaluation-cache lookups served from memoized entries.
    pub cache_hits: u64,
    /// Evaluation-cache lookups computed fresh.
    pub cache_misses: u64,
    /// Dedicated liveness searches the fused pass avoided.
    pub fused_searches_saved: u64,
}

/// The cross-run policy-store arm (`BENCH_policy.json`): the same decision
/// stream resolved **cold** (a recording ladder running full lookahead per
/// decision, training the store) and then **warm** (a fresh ladder serving
/// store-hits, falling back to lookahead only on the governed refresh
/// cadence).
#[derive(Clone, Debug, Default)]
pub struct PolicyArm {
    /// Entries the cold pass recorded.
    pub trained_entries: u64,
    /// Content id of the trained store (deterministic).
    pub store_content_id: u64,
    /// States explored by the cold (training) pass.
    pub cold_total_states: u64,
    /// Decisions in the cold pass.
    pub cold_decisions: u64,
    /// States explored by the warm replay (refresh decisions only; pure
    /// hits cost zero modeled states).
    pub warm_total_states: u64,
    /// Decisions in the warm replay (several laps over the stream, so the
    /// refresh cadence actually fires).
    pub warm_decisions: u64,
    /// Store hits in the warm replay.
    pub hits: u64,
    /// Store misses in the warm replay.
    pub misses: u64,
    /// Stale entries the refresh cadence caught (0 for a deterministic
    /// evaluator).
    pub stale: u64,
    /// Refresh re-resolutions that ran real lookahead.
    pub refreshes: u64,
    /// Fraction of warm decisions resolving the same option key as the
    /// cold pass. The transparency contract pins this at exactly 1.0.
    pub agreement: f64,
}

impl PolicyArm {
    /// Mean states per decision in the cold (training) pass.
    pub fn cold_states_per_decision(&self) -> f64 {
        self.cold_total_states as f64 / self.cold_decisions.max(1) as f64
    }

    /// Mean states per decision in the warm replay.
    pub fn warm_states_per_decision(&self) -> f64 {
        self.warm_total_states as f64 / self.warm_decisions.max(1) as f64
    }

    /// Deterministic warm-vs-cold speedup in states (= sim-µs) per
    /// decision.
    pub fn speedup(&self) -> f64 {
        self.cold_states_per_decision() / self.warm_states_per_decision().max(1e-9)
    }
}

/// One scenario's before/after record.
#[derive(Clone, Debug)]
pub struct ScenarioBench {
    /// Registered scenario name this workload models.
    pub scenario: &'static str,
    /// Decisions resolved per mode.
    pub decisions: u64,
    /// Options per decision.
    pub options: usize,
    /// Three-pass, uncached reference cost.
    pub baseline: ModeStats,
    /// Fused, cached cost.
    pub optimized: ModeStats,
    /// Fraction of decisions where both modes picked the same option.
    pub agreement: f64,
    /// The cross-run policy-store arm over the same decision stream.
    pub policy: PolicyArm,
}

impl ScenarioBench {
    /// Mean states explored per resolved decision in a mode.
    pub fn states_per_decision(stats: &ModeStats, decisions: u64) -> f64 {
        stats.total_states as f64 / decisions.max(1) as f64
    }

    /// Deterministic sim-cost reduction: baseline / optimized states per
    /// decision.
    pub fn reduction(&self) -> f64 {
        let b = Self::states_per_decision(&self.baseline, self.decisions);
        let o = Self::states_per_decision(&self.optimized, self.decisions).max(1e-9);
        b / o
    }
}

/// Drives `decisions` resolutions of an `n_options`-way choice through both
/// evaluation modes and returns the cost record.
///
/// `mk(d, i)` builds the predictive system for option `i` of decision `d`;
/// both modes see the same systems and the same walk RNG seed, so the only
/// difference is the evaluation pipeline itself.
fn drive<T, F>(
    scenario: &'static str,
    decisions: u64,
    n_options: usize,
    cfg: PredictConfig,
    objectives: &ObjectiveSet<T::State>,
    seed: u64,
    mk: F,
) -> ScenarioBench
where
    T: TransitionSystem,
    T::State: 'static,
    F: Fn(u64, usize) -> T,
{
    let mut baseline = ModeStats::default();
    let mut optimized = ModeStats::default();
    let mut agreements = 0u64;
    for d in 0..decisions {
        let rng_seed = seed ^ d.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Baseline: three passes, no cache.
        let base_cfg = PredictConfig {
            cache: false,
            ..cfg.clone()
        };
        let mut eval = ModelEvaluator::new(
            |i| mk(d, i),
            objectives,
            base_cfg,
            SimRng::seed_from(rng_seed),
        );
        let mut base_pick = 0usize;
        let mut base_best: Option<Prediction> = None;
        for i in 0..n_options {
            let p = eval.evaluate_multipass(i);
            baseline.total_states += p.states_explored;
            // Same rule as LookaheadResolver: earliest wins ties.
            if base_best.as_ref().is_none_or(|b| p.better_than(b)) {
                base_pick = i;
                base_best = Some(p);
            }
        }
        // Optimized: fused single pass + per-decision EvalCache.
        let opt_cfg = PredictConfig {
            cache: true,
            ..cfg.clone()
        };
        let mut eval = ModelEvaluator::new(
            |i| mk(d, i),
            objectives,
            opt_cfg,
            SimRng::seed_from(rng_seed),
        );
        let mut opt_pick = 0usize;
        let mut opt_best: Option<Prediction> = None;
        for i in 0..n_options {
            let p = eval.evaluate(i);
            optimized.total_states += p.states_explored;
            if opt_best.as_ref().is_none_or(|b| p.better_than(b)) {
                opt_pick = i;
                opt_best = Some(p);
            }
        }
        if let Some(cache) = eval.cache() {
            optimized.cache_hits += cache.hits();
            optimized.cache_misses += cache.misses();
        }
        optimized.fused_searches_saved += eval.fused_searches_saved();
        if base_pick == opt_pick {
            agreements += 1;
        }
    }
    let policy = policy_arm(scenario, decisions, n_options, &cfg, objectives, seed, &mk);
    ScenarioBench {
        scenario,
        decisions,
        options: n_options,
        baseline,
        optimized,
        agreement: agreements as f64 / decisions.max(1) as f64,
        policy,
    }
}

/// The policy-store arm over the same decision stream as [`drive`]: train a
/// store through a *recording* ladder resolving cold (full fused+cached
/// lookahead per decision), then replay the stream through a *warm* ladder
/// loaded with that store. The replay loops the stream enough times that the
/// governor-gated refresh cadence (every 16th hit) actually fires, so the
/// reported warm cost includes the honesty re-checks — the steady-state
/// amortized cost, not the best case.
fn policy_arm<T, F>(
    scenario: &'static str,
    decisions: u64,
    n_options: usize,
    cfg: &PredictConfig,
    objectives: &ObjectiveSet<T::State>,
    seed: u64,
    mk: &F,
) -> PolicyArm
where
    T: TransitionSystem,
    T::State: 'static,
    F: Fn(u64, usize) -> T,
{
    let opt_cfg = PredictConfig {
        cache: true,
        ..cfg.clone()
    };
    let options: Vec<OptionDesc> = (0..n_options as u64).map(OptionDesc::key).collect();
    // Per-decision state fingerprint: distinct decisions in the stream are
    // distinct store entries (same scenario, different modeled snapshot).
    let state_fp = |d: u64| mix(seed ^ d);

    // Cold pass: a recording ladder trains the store.
    let rec = Arc::new(Mutex::new(PolicyStore::new(scenario)));
    let mut trainer = LadderResolver::new().recording_into(rec.clone());
    let mut arm = PolicyArm {
        cold_decisions: decisions,
        ..PolicyArm::default()
    };
    let mut cold_picks = Vec::with_capacity(decisions as usize);
    for d in 0..decisions {
        let rng_seed = seed ^ d.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut eval = ModelEvaluator::new(
            |i| mk(d, i),
            objectives,
            opt_cfg.clone(),
            SimRng::seed_from(rng_seed),
        );
        trainer.observe_health(&HealthSignals::default());
        let req = ChoiceRequest::new(scenario, &options).with_state_fp(state_fp(d));
        let pick = trainer.resolve(&req, &mut eval);
        arm.cold_total_states += eval.states_spent();
        cold_picks.push(pick);
    }
    let store = rec.lock().expect("policy recorder poisoned").clone();
    arm.trained_entries = store.len() as u64;
    arm.store_content_id = store.content_id();
    let store = Arc::new(store);

    // Warm replay: enough laps over the stream that at least two refresh
    // re-checks fire at the default cadence of 16 hits.
    let laps = (32 / decisions.max(1)).max(4);
    let mut warm = LadderResolver::new().with_policy(store);
    let mut agreements = 0u64;
    for _ in 0..laps {
        for d in 0..decisions {
            let rng_seed = seed ^ d.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut eval = ModelEvaluator::new(
                |i| mk(d, i),
                objectives,
                opt_cfg.clone(),
                SimRng::seed_from(rng_seed),
            );
            warm.observe_health(&HealthSignals::default());
            let req = ChoiceRequest::new(scenario, &options).with_state_fp(state_fp(d));
            let pick = warm.resolve(&req, &mut eval);
            arm.warm_total_states += eval.states_spent();
            arm.warm_decisions += 1;
            if matches!(
                warm.last_policy(),
                PolicyDisposition::Refreshed | PolicyDisposition::Stale
            ) {
                arm.refreshes += 1;
            }
            if pick == cold_picks[d as usize] {
                agreements += 1;
            }
        }
    }
    let (hits, misses, stale, _) = warm.policy_counters();
    arm.hits = hits;
    arm.misses = misses;
    arm.stale = stale;
    arm.agreement = agreements as f64 / arm.warm_decisions.max(1) as f64;
    arm
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// randtree: forward-join descent over the real JoinDescent model.
// ---------------------------------------------------------------------------

fn randtree_known(d: u64) -> BTreeMap<u32, TreeCheckpoint> {
    let ck = |parent, children: Vec<u32>, depth, size, height| TreeCheckpoint {
        parent,
        children,
        depth,
        subtree_size: size,
        subtree_height: height,
    };
    // A full 3-level known core; the grandchildren's subtrees are generic
    // with heights that vary per decision (churn shifting the snapshot).
    let h = 2 + (mix(d) % 3) as u32;
    let mut m = BTreeMap::new();
    m.insert(0, ck(None, vec![1, 2], 1, 14, h + 2));
    m.insert(1, ck(Some(0), vec![3, 4], 2, 7, h + 1));
    m.insert(2, ck(Some(0), vec![5, 6], 2, 6, h));
    m.insert(3, ck(Some(1), vec![7, 8], 3, 3, h));
    m
}

fn randtree_bench(decisions: u64) -> ScenarioBench {
    let objectives: ObjectiveSet<JState> = ObjectiveSet::new()
        .minimize("attach depth", 1.0, |s: &JState| attach_depth(s) as f64)
        .safety(Property::safety("attach stays shallow", |s: &JState| {
            attach_depth(s) <= 6
        }))
        .liveness(Property::eventually("join attaches", |s: &JState| {
            s.done.is_some()
        }));
    let starts = [1u32, 2, 3];
    drive(
        "randtree",
        decisions,
        starts.len(),
        PredictConfig {
            depth: 8,
            walks: 8,
            max_states: 20_000,
            ..Default::default()
        },
        &objectives,
        0x5eed_0001,
        move |d, i| JoinDescent {
            known: randtree_known(d),
            start: starts[i],
            start_depth: 2 + (i == 2) as u32,
            start_height: 2 + (mix(d) % 3) as u32,
        },
    )
}

// ---------------------------------------------------------------------------
// gossip: flooding broadcast (the E8 model); option = push fanout.
// ---------------------------------------------------------------------------

fn gossip_bench(decisions: u64) -> ScenarioBench {
    use crate::models::FloodState;
    let objectives: ObjectiveSet<FloodState> = ObjectiveSet::new()
        .maximize("coverage", 1.0, flood_coverage)
        .safety(Property::safety("send queue bounded", |s: &FloodState| {
            s.pending.len() <= 8
        }))
        .liveness(Property::eventually(
            "datum reaches everyone",
            |s: &FloodState| s.received.iter().all(|&r| r),
        ));
    drive(
        "gossip",
        decisions,
        3,
        PredictConfig {
            depth: 4,
            walks: 8,
            max_states: 20_000,
            ..Default::default()
        },
        &objectives,
        0x5eed_0002,
        |d, i| Flood {
            n: 5 + (mix(d) % 2) as usize,
            fanout: 1 + i,
        },
    )
}

// ---------------------------------------------------------------------------
// paxos: a quorum race between two competing ballots.
// ---------------------------------------------------------------------------

/// Acceptor votes: 0 = none, 1 = ballot A, 2 = ballot B.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct RaceState(pub Vec<u8>);

/// One acceptor casting its vote.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct Vote(pub u8, pub u8);

/// Two proposers race for a quorum of `n` acceptors; the exposed choice is
/// which acceptor our ballot (A) courts first. Every undecided acceptor may
/// vote either way at any point — the interleavings are the state blow-up a
/// real Paxos prediction wades through.
#[derive(Clone, Debug)]
pub struct QuorumRace {
    /// Acceptor count.
    pub n: u8,
    /// Votes needed to win.
    pub quorum: u8,
    /// Acceptor pre-voted for A (the courted one).
    pub courted: u8,
    /// Acceptor pre-voted for B (the rival's head start).
    pub rival: u8,
}

impl QuorumRace {
    fn tally(s: &RaceState) -> (u8, u8) {
        let a = s.0.iter().filter(|&&v| v == 1).count() as u8;
        let b = s.0.iter().filter(|&&v| v == 2).count() as u8;
        (a, b)
    }
}

impl TransitionSystem for QuorumRace {
    type State = RaceState;
    type Action = Vote;

    fn initial(&self) -> RaceState {
        let mut votes = vec![0u8; self.n as usize];
        votes[self.courted as usize] = 1;
        if self.rival != self.courted {
            votes[self.rival as usize] = 2;
        }
        RaceState(votes)
    }

    fn actions(&self, s: &RaceState) -> Vec<Vote> {
        let (a, b) = Self::tally(s);
        if a >= self.quorum || b >= self.quorum {
            return Vec::new(); // decided
        }
        let mut acts = Vec::new();
        for (i, &v) in s.0.iter().enumerate() {
            if v == 0 {
                acts.push(Vote(i as u8, 1));
                acts.push(Vote(i as u8, 2));
            }
        }
        acts
    }

    fn step(&self, s: &RaceState, a: &Vote) -> RaceState {
        let mut next = s.clone();
        next.0[a.0 as usize] = a.1;
        next
    }

    fn locus(&self, a: &Vote) -> usize {
        a.0 as usize
    }
}

fn paxos_bench(decisions: u64) -> ScenarioBench {
    let quorum = 3u8;
    let objectives: ObjectiveSet<RaceState> = ObjectiveSet::new()
        .maximize("our votes", 1.0, |s: &RaceState| {
            QuorumRace::tally(s).0 as f64
        })
        .safety(Property::safety("rival stays short of quorum", move |s| {
            QuorumRace::tally(s).1 < quorum
        }))
        .liveness(Property::eventually("some ballot wins", move |s| {
            let (a, b) = QuorumRace::tally(s);
            a >= quorum || b >= quorum
        }));
    drive(
        "paxos",
        decisions,
        3,
        PredictConfig {
            depth: 5,
            walks: 4,
            max_states: 20_000,
            ..Default::default()
        },
        &objectives,
        0x5eed_0003,
        move |d, i| QuorumRace {
            n: 5,
            quorum,
            courted: i as u8,
            rival: 3 + (mix(d) % 2) as u8,
        },
    )
}

// ---------------------------------------------------------------------------
// dissem: block dissemination around a ring of peers.
// ---------------------------------------------------------------------------

/// Per-peer bitmask of blocks held.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct SpreadState(pub Vec<u16>);

/// Peer `from` forwards block `block` to its ring successor.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct Forward {
    /// Sending peer.
    pub from: u8,
    /// Block index.
    pub block: u8,
}

/// `blocks` blocks spread peer-to-peer around a ring; any held block can be
/// forwarded to the successor that lacks it, so transfers of different
/// blocks interleave freely. The exposed choice is which peer seeds the
/// swarm.
#[derive(Clone, Debug)]
pub struct BlockSpread {
    /// Ring size.
    pub peers: u8,
    /// Number of blocks.
    pub blocks: u8,
    /// Peer initially holding every block.
    pub seeded: u8,
    /// A second peer starting with block 0 (varies per decision).
    pub booster: u8,
}

impl TransitionSystem for BlockSpread {
    type State = SpreadState;
    type Action = Forward;

    fn initial(&self) -> SpreadState {
        let mut held = vec![0u16; self.peers as usize];
        held[self.seeded as usize] = (1 << self.blocks) - 1;
        held[self.booster as usize] |= 1;
        SpreadState(held)
    }

    fn actions(&self, s: &SpreadState) -> Vec<Forward> {
        let mut acts = Vec::new();
        for p in 0..self.peers {
            let succ = ((p + 1) % self.peers) as usize;
            for b in 0..self.blocks {
                if s.0[p as usize] & (1 << b) != 0 && s.0[succ] & (1 << b) == 0 {
                    acts.push(Forward { from: p, block: b });
                }
            }
        }
        acts
    }

    fn step(&self, s: &SpreadState, a: &Forward) -> SpreadState {
        let mut next = s.clone();
        let succ = ((a.from + 1) % self.peers) as usize;
        next.0[succ] |= 1 << a.block;
        next
    }

    fn locus(&self, a: &Forward) -> usize {
        a.from as usize
    }
}

fn dissem_bench(decisions: u64) -> ScenarioBench {
    let peers = 4u8;
    let blocks = 3u8;
    let full = (1u16 << blocks) - 1;
    let objectives: ObjectiveSet<SpreadState> = ObjectiveSet::new()
        .maximize("blocks held", 1.0, move |s: &SpreadState| {
            s.0.iter().map(|m| m.count_ones() as f64).sum()
        })
        .safety(Property::safety(
            "masks stay in range",
            move |s: &SpreadState| s.0.iter().all(|&m| m <= full),
        ))
        .liveness(Property::eventually(
            "swarm completes",
            move |s: &SpreadState| s.0.iter().all(|&m| m == full),
        ));
    drive(
        "dissem",
        decisions,
        3,
        PredictConfig {
            depth: 5,
            walks: 4,
            max_states: 20_000,
            ..Default::default()
        },
        &objectives,
        0x5eed_0004,
        move |d, i| BlockSpread {
            peers,
            blocks,
            seeded: i as u8,
            booster: (i as u8 + 1 + (mix(d) % 2) as u8) % peers,
        },
    )
}

// ---------------------------------------------------------------------------
// ring: the harness's token-passing toy.
// ---------------------------------------------------------------------------

/// Token position and steps taken so far.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct TokenState {
    /// Which node holds the token.
    pub pos: u8,
    /// Steps taken.
    pub steps: u8,
}

/// A token circles `n` nodes; exactly one action is enabled at a time. The
/// exposed choice is where the token is injected.
#[derive(Clone, Debug)]
pub struct TokenLap {
    /// Ring size.
    pub n: u8,
    /// Injection point.
    pub start: u8,
}

impl TransitionSystem for TokenLap {
    type State = TokenState;
    type Action = u8;

    fn initial(&self) -> TokenState {
        TokenState {
            pos: self.start % self.n,
            steps: 0,
        }
    }

    fn actions(&self, s: &TokenState) -> Vec<u8> {
        vec![s.pos]
    }

    fn step(&self, s: &TokenState, _a: &u8) -> TokenState {
        TokenState {
            pos: (s.pos + 1) % self.n,
            steps: s.steps + 1,
        }
    }

    fn locus(&self, a: &u8) -> usize {
        *a as usize
    }
}

fn ring_bench(decisions: u64) -> ScenarioBench {
    let objectives: ObjectiveSet<TokenState> = ObjectiveSet::new()
        .maximize("progress", 1.0, |s: &TokenState| s.steps as f64)
        .safety(Property::safety(
            "token stays on the ring",
            |s: &TokenState| s.pos < 8,
        ))
        .liveness(Property::eventually(
            "token reaches node 0",
            |s: &TokenState| s.pos == 0 && s.steps > 0,
        ));
    drive(
        "ring",
        decisions,
        3,
        PredictConfig {
            depth: 6,
            walks: 4,
            max_states: 20_000,
            ..Default::default()
        },
        &objectives,
        0x5eed_0005,
        |d, i| TokenLap {
            n: 4 + (mix(d) % 3) as u8,
            start: (i as u8) * 2,
        },
    )
}

/// Runs the full benchmark: one workload per registered scenario.
pub fn run_all(decisions: u64) -> Vec<ScenarioBench> {
    vec![
        randtree_bench(decisions),
        gossip_bench(decisions),
        paxos_bench(decisions),
        dissem_bench(decisions),
        ring_bench(decisions),
    ]
}

/// Schema tag of `BENCH_decision.json` (re-exported from the shared
/// envelope module).
pub use crate::benchjson::DECISION_BENCH_SCHEMA;

/// Serializes the benchmark into the `BENCH_decision.json` schema (see
/// EXPERIMENTS.md, "Reading BENCH_decision.json").
pub fn to_json(benches: &[ScenarioBench], decisions: u64, quick: bool) -> Json {
    let mut rows = Vec::new();
    let mut at_2x = 0u64;
    let mut log_sum = 0.0f64;
    for b in benches {
        let base_spd = ScenarioBench::states_per_decision(&b.baseline, b.decisions);
        let opt_spd = ScenarioBench::states_per_decision(&b.optimized, b.decisions);
        let reduction = b.reduction();
        if reduction >= 2.0 {
            at_2x += 1;
        }
        log_sum += reduction.max(1e-9).ln();
        let lookups = b.optimized.cache_hits + b.optimized.cache_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            b.optimized.cache_hits as f64 / lookups as f64
        };
        rows.push(
            Json::obj()
                .with("scenario", b.scenario)
                .with("decisions", b.decisions)
                .with("options_per_decision", b.options)
                .with(
                    "baseline",
                    Json::obj()
                        .with("mode", "multipass-uncached")
                        .with("total_states", b.baseline.total_states)
                        .with("states_per_decision", base_spd)
                        .with("sim_cost_us_per_decision", base_spd),
                )
                .with(
                    "optimized",
                    Json::obj()
                        .with("mode", "fused-cached")
                        .with("total_states", b.optimized.total_states)
                        .with("states_per_decision", opt_spd)
                        .with("sim_cost_us_per_decision", opt_spd)
                        .with("cache_hits", b.optimized.cache_hits)
                        .with("cache_misses", b.optimized.cache_misses)
                        .with("cache_hit_rate", hit_rate)
                        .with("fused_searches_saved", b.optimized.fused_searches_saved),
                )
                .with("reduction", reduction)
                .with("agreement", b.agreement),
        );
    }
    let geomean = (log_sum / benches.len().max(1) as f64).exp();
    crate::benchjson::envelope(
        "decision",
        DECISION_BENCH_SCHEMA,
        "states explored per resolved decision; sim-cost at 1 us/state",
        Json::obj()
            .with("decisions", decisions)
            .with("quick", quick),
    )
    .with("scenarios", rows)
    .with(
        "summary",
        Json::obj()
            .with("scenarios_at_2x", at_2x)
            .with("geomean_reduction", geomean),
    )
}

/// Schema tag of `BENCH_policy.json`.
pub const POLICY_BENCH_SCHEMA: &str = "cb-bench-policy/v1";

/// Serializes the policy-store arm into the `BENCH_policy.json` schema (see
/// EXPERIMENTS.md, "Reading BENCH_policy.json"). Like `BENCH_decision.json`
/// the artifact carries only deterministic sim-costs — no wall-clock
/// numbers — so reruns are byte-identical.
pub fn policy_to_json(benches: &[ScenarioBench], decisions: u64, quick: bool) -> Json {
    let mut rows = Vec::new();
    let mut at_5x = 0u64;
    let mut log_sum = 0.0f64;
    let mut agreement_all = true;
    for b in benches {
        let p = &b.policy;
        let speedup = p.speedup();
        if speedup >= 5.0 {
            at_5x += 1;
        }
        log_sum += speedup.max(1e-9).ln();
        agreement_all &= p.agreement == 1.0;
        rows.push(
            Json::obj()
                .with("scenario", b.scenario)
                .with("options_per_decision", b.options)
                .with(
                    "store",
                    Json::obj()
                        .with("entries", p.trained_entries)
                        // Decimal string: content ids use the full u64
                        // range, beyond JSON's f64-safe 2^53.
                        .with("content_id", p.store_content_id.to_string()),
                )
                .with(
                    "cold",
                    Json::obj()
                        .with("mode", "ladder-lookahead-recording")
                        .with("decisions", p.cold_decisions)
                        .with("total_states", p.cold_total_states)
                        .with("states_per_decision", p.cold_states_per_decision())
                        .with("sim_cost_us_per_decision", p.cold_states_per_decision()),
                )
                .with(
                    "warm",
                    Json::obj()
                        .with("mode", "ladder-policy-store")
                        .with("decisions", p.warm_decisions)
                        .with("total_states", p.warm_total_states)
                        .with("states_per_decision", p.warm_states_per_decision())
                        .with("sim_cost_us_per_decision", p.warm_states_per_decision())
                        .with("policy_hits", p.hits)
                        .with("policy_misses", p.misses)
                        .with("policy_stale", p.stale)
                        .with("refreshes", p.refreshes),
                )
                .with("speedup", speedup)
                .with("agreement", p.agreement),
        );
    }
    let geomean = (log_sum / benches.len().max(1) as f64).exp();
    crate::benchjson::envelope(
        "policy",
        POLICY_BENCH_SCHEMA,
        "states explored per resolved decision; sim-cost at 1 us/state",
        Json::obj()
            .with("decisions", decisions)
            .with("quick", quick),
    )
    .with("scenarios", rows)
    .with(
        "summary",
        Json::obj()
            .with("scenarios_at_5x", at_5x)
            .with("geomean_speedup", geomean)
            .with("agreement_all", agreement_all),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_scenario_is_benched() {
        let benches = run_all(2);
        let names: Vec<&str> = benches.iter().map(|b| b.scenario).collect();
        assert_eq!(names, vec!["randtree", "gossip", "paxos", "dissem", "ring"]);
        for b in &benches {
            assert!(
                b.baseline.total_states > 0,
                "{}: empty baseline",
                b.scenario
            );
            assert!(
                b.optimized.total_states > 0,
                "{}: empty optimized",
                b.scenario
            );
            assert!(
                b.optimized.total_states < b.baseline.total_states,
                "{}: fusion must reduce explored states",
                b.scenario
            );
            assert!(
                b.optimized.cache_misses > 0,
                "{}: cache never exercised",
                b.scenario
            );
        }
    }

    #[test]
    fn bench_is_deterministic() {
        let a = run_all(2);
        let b = run_all(2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.baseline.total_states, y.baseline.total_states);
            assert_eq!(x.optimized.total_states, y.optimized.total_states);
            assert_eq!(x.optimized.cache_hits, y.optimized.cache_hits);
        }
    }

    #[test]
    fn at_least_three_scenarios_hit_2x() {
        let benches = run_all(4);
        let at_2x = benches.iter().filter(|b| b.reduction() >= 2.0).count();
        assert!(
            at_2x >= 3,
            "only {at_2x} scenarios at >=2x: {:?}",
            benches
                .iter()
                .map(|b| (b.scenario, b.reduction()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn policy_arm_is_transparent_and_amortizes_lookahead() {
        for b in run_all(2) {
            let p = &b.policy;
            assert_eq!(
                p.agreement, 1.0,
                "{}: warm resolution must agree with cold exactly",
                b.scenario
            );
            assert!(p.trained_entries > 0, "{}: nothing recorded", b.scenario);
            assert!(p.cold_total_states > 0, "{}: free cold pass?", b.scenario);
            assert!(
                p.refreshes >= 2,
                "{}: refresh cadence never fired ({} warm decisions)",
                b.scenario,
                p.warm_decisions
            );
            assert_eq!(
                p.stale, 0,
                "{}: deterministic evaluator went stale",
                b.scenario
            );
            assert!(
                p.speedup() >= 5.0,
                "{}: warm speedup only {:.2}x",
                b.scenario,
                p.speedup()
            );
        }
    }

    #[test]
    fn policy_arm_is_deterministic() {
        let a = run_all(2);
        let b = run_all(2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.policy.store_content_id, y.policy.store_content_id);
            assert_eq!(x.policy.cold_total_states, y.policy.cold_total_states);
            assert_eq!(x.policy.warm_total_states, y.policy.warm_total_states);
            assert_eq!(x.policy.hits, y.policy.hits);
        }
    }

    #[test]
    fn policy_json_schema_has_the_contract_fields() {
        let benches = run_all(1);
        let json = policy_to_json(&benches, 1, true);
        crate::benchjson::validate(&json, "policy", POLICY_BENCH_SCHEMA, "scenarios")
            .expect("shared envelope contract");
        let rows = json
            .get("scenarios")
            .and_then(|j| j.as_array())
            .expect("scenarios array");
        assert_eq!(rows.len(), 5);
        for row in rows {
            for key in ["scenario", "store", "cold", "warm", "speedup", "agreement"] {
                assert!(row.get(key).is_some(), "missing {key}");
            }
            assert!(row
                .get("warm")
                .and_then(|w| w.get("states_per_decision"))
                .is_some());
            assert!(row.get("store").and_then(|s| s.get("content_id")).is_some());
        }
        let summary = json.get("summary").expect("summary");
        for key in ["scenarios_at_5x", "geomean_speedup", "agreement_all"] {
            assert!(summary.get(key).is_some(), "missing summary.{key}");
        }
    }

    #[test]
    fn json_schema_has_the_contract_fields() {
        let benches = run_all(1);
        let json = to_json(&benches, 1, true);
        crate::benchjson::validate(&json, "decision", DECISION_BENCH_SCHEMA, "scenarios")
            .expect("shared envelope contract");
        let rows = json
            .get("scenarios")
            .and_then(|j| j.as_array())
            .expect("scenarios array");
        assert_eq!(rows.len(), 5);
        for row in rows {
            for key in [
                "scenario",
                "baseline",
                "optimized",
                "reduction",
                "agreement",
            ] {
                assert!(row.get(key).is_some(), "missing {key}");
            }
            assert!(row
                .get("baseline")
                .and_then(|b| b.get("states_per_decision"))
                .is_some());
            assert!(row
                .get("optimized")
                .and_then(|b| b.get("cache_hit_rate"))
                .is_some());
        }
        assert!(json
            .get("summary")
            .and_then(|s| s.get("geomean_reduction"))
            .is_some());
    }
}
