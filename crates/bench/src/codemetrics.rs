//! Source-code complexity metrics (experiment E1).
//!
//! The paper's §4 quantifies the programming-model claim with two numbers:
//! lines of code (487 → 280, a 43% reduction) and *if-else statements per
//! handler* (1.94 → 0.28). We apply the same methodology to our own two
//! RandTree implementations: the analyzer counts effective lines and
//! branching over the marked handler regions (and the whole
//! implementation, tests stripped) of `cb-randtree`'s `baseline.rs` and
//! `choice.rs`, embedded at compile time.

/// The baseline RandTree source, embedded verbatim.
pub const BASELINE_SRC: &str = include_str!("../../randtree/src/baseline.rs");

/// The choice-exposed RandTree source, embedded verbatim.
pub const CHOICE_SRC: &str = include_str!("../../randtree/src/choice.rs");

/// Code metrics of one implementation.
#[derive(Clone, Debug, PartialEq)]
pub struct CodeMetrics {
    /// Effective (non-blank, non-comment) lines of the implementation,
    /// tests excluded.
    pub loc: usize,
    /// Effective lines in the marked handler region.
    pub handler_loc: usize,
    /// Number of handler functions in the marked region plus the Service
    /// trait handlers.
    pub handlers: usize,
    /// `if` statements (including each `else if`) in the handler region and
    /// Service handlers.
    pub ifs: usize,
    /// Statements (`;` plus block openings) in the implementation, tests
    /// excluded — a formatting-invariant size proxy.
    pub statements: usize,
}

impl CodeMetrics {
    /// The paper's complexity metric: if-else statements per handler.
    pub fn ifs_per_handler(&self) -> f64 {
        if self.handlers == 0 {
            0.0
        } else {
            self.ifs as f64 / self.handlers as f64
        }
    }
}

/// Drops everything from the `#[cfg(test)]` marker on.
fn strip_tests(src: &str) -> &str {
    match src.find("#[cfg(test)]") {
        Some(i) => &src[..i],
        None => src,
    }
}

/// True for lines that count toward LoC: non-blank, not pure comments.
fn is_effective(line: &str) -> bool {
    let t = line.trim();
    !t.is_empty() && !t.starts_with("//") && !t.starts_with("/*") && !t.starts_with('*')
}

/// Effective lines in `src`.
pub fn effective_loc(src: &str) -> usize {
    src.lines().filter(|l| is_effective(l)).count()
}

/// Statements in `src`: semicolons plus block openings on effective lines.
/// Invariant under rustfmt reflowing, unlike raw line counts.
pub fn statement_count(src: &str) -> usize {
    src.lines()
        .filter(|l| is_effective(l))
        .map(|l| l.matches(';').count() + l.matches('{').count())
        .sum()
}

/// The text between the `[handlers:begin]` / `[handlers:end]` markers.
///
/// # Panics
///
/// Panics when the markers are missing — the experiment depends on them.
pub fn handler_region(src: &str) -> &str {
    // Match the marker comment lines, not mentions in the module docs.
    let begin = src
        .find("// [handlers:begin]")
        .expect("missing [handlers:begin] marker");
    let end = src
        .find("// [handlers:end]")
        .expect("missing [handlers:end] marker");
    &src[begin..end]
}

/// The body of `impl Service for …` (trait handlers also count as
/// handlers: they dispatch messages and timers).
fn service_impl_region(src: &str) -> &str {
    let begin = src.find("impl Service for").expect("missing Service impl");
    // The impl ends at the next top-level `}` — approximate by the test
    // marker or end of file, since the impl is last before tests.
    let rest = &src[begin..];
    match rest.find("#[cfg(test)]") {
        Some(i) => &rest[..i],
        None => rest,
    }
}

/// Counts `if` keyword occurrences (each `else if` counts once, via its
/// `if`) in effective lines.
pub fn count_ifs(region: &str) -> usize {
    region
        .lines()
        .filter(|l| is_effective(l))
        .map(|l| {
            // Token-ish scan: count occurrences of `if` bounded by
            // non-identifier characters.
            let bytes = l.as_bytes();
            let mut n = 0;
            let mut i = 0;
            while i + 2 <= bytes.len() {
                if &bytes[i..i + 2] == b"if"
                    && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric() && bytes[i - 1] != b'_')
                    && (i + 2 == bytes.len()
                        || !bytes[i + 2].is_ascii_alphanumeric() && bytes[i + 2] != b'_')
                {
                    n += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            n
        })
        .sum()
}

/// Counts function definitions in a region.
pub fn count_fns(region: &str) -> usize {
    region
        .lines()
        .filter(|l| is_effective(l))
        .filter(|l| l.trim_start().starts_with("fn ") || l.contains(" fn "))
        .count()
}

/// Counts event-handler callbacks (`fn on_*`) in a region.
fn count_event_handlers(region: &str) -> usize {
    region
        .lines()
        .filter(|l| is_effective(l))
        .filter(|l| {
            let t = l.trim_start();
            t.starts_with("fn on_") || t.contains(" fn on_")
        })
        .count()
}

/// Analyzes one implementation source.
pub fn analyze(src: &str) -> CodeMetrics {
    let body = strip_tests(src);
    let handlers_region = handler_region(body);
    let service_region = service_impl_region(body);
    // Handlers are the marked policy/handler functions plus the Service
    // event callbacks (`on_*`); checkpoint/neighbors accessors are not
    // handlers.
    let handlers = count_fns(handlers_region) + count_event_handlers(service_region);
    let ifs = count_ifs(handlers_region) + count_ifs(service_region);
    CodeMetrics {
        loc: effective_loc(body),
        handler_loc: effective_loc(handlers_region),
        handlers,
        ifs,
        statements: statement_count(body),
    }
}

/// The E1 table: baseline vs choice metrics.
pub fn e1_metrics() -> (CodeMetrics, CodeMetrics) {
    (analyze(BASELINE_SRC), analyze(CHOICE_SRC))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_loc_skips_comments_and_blanks() {
        let src = "// comment\n\nlet x = 1; // trailing is fine\n/* block */\n * doc\n";
        assert_eq!(effective_loc(src), 1);
    }

    #[test]
    fn count_ifs_is_token_aware() {
        assert_eq!(count_ifs("if a { } else if b { }"), 2);
        assert_eq!(count_ifs("verify(x); life; modifier"), 0);
        assert_eq!(count_ifs("if let Some(x) = y {"), 1);
        assert_eq!(count_ifs("// if inside comment"), 0);
    }

    #[test]
    fn both_sources_have_markers() {
        let _ = handler_region(BASELINE_SRC);
        let _ = handler_region(CHOICE_SRC);
    }

    #[test]
    fn choice_version_is_substantially_simpler() {
        let (base, choice) = e1_metrics();
        // The headline claims of E1, asserted as invariants of this repo:
        // fewer lines, and far fewer if-else per handler.
        assert!(
            choice.loc < base.loc,
            "choice LoC {} not below baseline {}",
            choice.loc,
            base.loc
        );
        assert!(
            choice.ifs_per_handler() < base.ifs_per_handler() / 2.0,
            "complexity: choice {:.2} vs baseline {:.2}",
            choice.ifs_per_handler(),
            base.ifs_per_handler()
        );
        assert!(base.handlers > 0 && choice.handlers > 0);
    }

    #[test]
    fn statement_count_ignores_formatting() {
        let one_line = "foo(a, b); if x { y(); }";
        let reflowed = "foo(
    a,
    b,
);
if x {
    y();
}";
        assert_eq!(statement_count(one_line), statement_count(reflowed));
    }

    #[test]
    fn strip_tests_removes_test_module() {
        assert!(!strip_tests(BASELINE_SRC).contains("mod tests"));
    }
}
