//! The scenario registry: every protocol the campaign runner can sweep.
//!
//! One place that knows about all the application scenarios (plus the
//! harness's built-in toy ring); the `campaign` binary and the smoke tests
//! both resolve scenario names through it.

use cb_harness::prelude::Scenario;
use cb_harness::toy::RingScenario;

/// All registered scenarios, in CLI listing order.
pub fn all_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(cb_randtree::RandTreeCampaign::default()),
        Box::new(cb_gossip::GossipCampaign::default()),
        Box::new(cb_paxos::PaxosCampaign::default()),
        Box::new(cb_dissem::SwarmCampaign::default()),
        Box::new(RingScenario::default()),
        Box::new(cb_kv::KvCampaign::default()),
        Box::new(cb_paxos::MenciusCampaign::default()),
    ]
}

/// Looks a scenario up by its `name()`.
pub fn scenario_by_name(name: &str) -> Option<Box<dyn Scenario>> {
    all_scenarios().into_iter().find(|s| s.name() == name)
}

/// The registered scenario names, for usage/error messages.
pub fn scenario_names() -> Vec<&'static str> {
    all_scenarios().iter().map(|s| s.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names = scenario_names();
        assert!(names.contains(&"randtree"));
        assert!(names.contains(&"gossip"));
        assert!(names.contains(&"paxos"));
        assert!(names.contains(&"dissem"));
        assert!(names.contains(&"ring"));
        assert!(names.contains(&"kv"));
        assert!(names.contains(&"mencius"));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        for n in names {
            assert!(scenario_by_name(n).is_some(), "{n} not resolvable");
        }
        assert!(scenario_by_name("nope").is_none());
    }
}
