//! The scenario registry: every protocol the campaign runner can sweep.
//!
//! One place that knows about all the application scenarios (plus the
//! harness's built-in toy ring); the `campaign` binary and the smoke tests
//! both resolve scenario names through it.

use cb_harness::prelude::Scenario;
use cb_harness::toy::RingScenario;
use cb_workload::WorkloadProfile;

/// All registered scenarios, in CLI listing order.
pub fn all_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(cb_randtree::RandTreeCampaign::default()),
        Box::new(cb_gossip::GossipCampaign::default()),
        Box::new(cb_paxos::PaxosCampaign::default()),
        Box::new(cb_dissem::SwarmCampaign::default()),
        Box::new(RingScenario::default()),
        Box::new(cb_kv::KvCampaign::default()),
        Box::new(cb_paxos::MenciusCampaign::default()),
    ]
}

/// Looks a scenario up by its `name()`.
pub fn scenario_by_name(name: &str) -> Option<Box<dyn Scenario>> {
    all_scenarios().into_iter().find(|s| s.name() == name)
}

/// The registered scenario names, for usage/error messages.
pub fn scenario_names() -> Vec<&'static str> {
    all_scenarios().iter().map(|s| s.name()).collect()
}

/// The named scenario configured for an open-loop workload arm
/// (`campaign --workload`, the conformance sweeps). The replicated-KV
/// family carries the full aggregate engine — kv with admission control
/// and bounded retries, mencius through its consensus entry point — while
/// the remaining protocols are driven harder through their existing entry
/// points by the profile's scale hint (more rumors, blocks, commands, or
/// participants). The ring toy has no load knob and runs stock.
pub fn workload_arm(name: &str, profile: &WorkloadProfile) -> Option<Box<dyn Scenario>> {
    let hint = profile.scale_hint();
    match name {
        "kv" => Some(Box::new(cb_kv::KvCampaign {
            workload: Some(profile.clone()),
            ..Default::default()
        })),
        "mencius" => Some(Box::new(cb_paxos::MenciusCampaign {
            workload: Some(profile.clone()),
            ..Default::default()
        })),
        "gossip" => {
            let d = cb_gossip::GossipCampaign::default();
            Some(Box::new(cb_gossip::GossipCampaign {
                rumors: d.rumors * hint,
                ..d
            }))
        }
        "dissem" => {
            let d = cb_dissem::SwarmCampaign::default();
            Some(Box::new(cb_dissem::SwarmCampaign {
                blocks: d.blocks * hint,
                ..d
            }))
        }
        "paxos" => {
            let d = cb_paxos::PaxosCampaign::default();
            Some(Box::new(cb_paxos::PaxosCampaign {
                commands_per_client: d.commands_per_client * hint,
                ..d
            }))
        }
        "randtree" => {
            let d = cb_randtree::RandTreeCampaign::default();
            Some(Box::new(cb_randtree::RandTreeCampaign {
                nodes: d.nodes * hint as usize,
                ..d
            }))
        }
        "ring" => Some(Box::new(RingScenario::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names = scenario_names();
        assert!(names.contains(&"randtree"));
        assert!(names.contains(&"gossip"));
        assert!(names.contains(&"paxos"));
        assert!(names.contains(&"dissem"));
        assert!(names.contains(&"ring"));
        assert!(names.contains(&"kv"));
        assert!(names.contains(&"mencius"));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        for n in names {
            assert!(scenario_by_name(n).is_some(), "{n} not resolvable");
        }
        assert!(scenario_by_name("nope").is_none());
    }

    #[test]
    fn every_scenario_has_a_workload_arm() {
        let p = WorkloadProfile::by_name("steady").expect("steady profile");
        for n in scenario_names() {
            let arm = workload_arm(n, &p);
            assert!(arm.is_some(), "{n} has no workload arm");
            assert_eq!(arm.unwrap().name(), n, "workload arm renamed {n}");
        }
        assert!(workload_arm("nope", &p).is_none());
    }
}
