//! The shared `BENCH_*.json` envelope: one builder and one validator for
//! every bench artifact the workspace emits.
//!
//! All bench artifacts share the same head — `bench` (short name),
//! `schema` (versioned tag), `unit` (what the numbers mean), `config`
//! (the knobs that shaped the run) — followed by a bench-specific rows
//! array and a `summary` object. Before this module each producer built
//! and each test re-validated that contract by hand; now
//! [`envelope`]/[`validate`] are the single source of truth, and
//! [`validate_schema_and_rows`] covers the lighter contract shared with
//! the corpus diff report (`cb-corpus-diff/v1`: schema + rows + summary,
//! no bench head).
//!
//! [`mask_wall`] is the in-process mirror of CI's python `mask()`: any
//! object key containing the wall marker is blanked before determinism
//! comparisons, matching `Registry::masked`'s convention.

use cb_harness::json::Json;
use cb_telemetry::WALL_MARKER;

/// Schema tag of `BENCH_decision.json`.
pub const DECISION_BENCH_SCHEMA: &str = "cb-bench-decision/v1";

/// Builds the common artifact head: `bench`, `schema`, `unit`, `config`.
/// Callers append their rows array and `summary`.
pub fn envelope(bench: &str, schema: &str, unit: &str, config: Json) -> Json {
    Json::obj()
        .with("bench", bench)
        .with("schema", schema)
        .with("unit", unit)
        .with("config", config)
}

/// Validates the light artifact contract: the schema tag matches, the
/// rows key holds a non-empty array, and `summary` is an object.
pub fn validate_schema_and_rows(json: &Json, schema: &str, rows_key: &str) -> Result<(), String> {
    match json.get("schema").and_then(Json::as_str) {
        Some(s) if s == schema => {}
        Some(s) => return Err(format!("schema is '{s}', want '{schema}'")),
        None => return Err("missing 'schema'".to_string()),
    }
    match json.get(rows_key).and_then(Json::as_array) {
        Some(rows) if !rows.is_empty() => {}
        Some(_) => return Err(format!("'{rows_key}' is empty")),
        None => return Err(format!("missing rows array '{rows_key}'")),
    }
    match json.get("summary") {
        Some(Json::Obj(_)) => Ok(()),
        Some(_) => Err("'summary' is not an object".to_string()),
        None => Err("missing 'summary'".to_string()),
    }
}

/// Validates the full bench-artifact contract: the light contract plus
/// the `bench` name, a `unit` string, and a `config` object.
pub fn validate(json: &Json, bench: &str, schema: &str, rows_key: &str) -> Result<(), String> {
    validate_schema_and_rows(json, schema, rows_key)?;
    match json.get("bench").and_then(Json::as_str) {
        Some(b) if b == bench => {}
        Some(b) => return Err(format!("bench is '{b}', want '{bench}'")),
        None => return Err("missing 'bench'".to_string()),
    }
    if !matches!(json.get("unit"), Some(Json::Str(_))) {
        return Err("missing 'unit'".to_string());
    }
    if !matches!(json.get("config"), Some(Json::Obj(_))) {
        return Err("missing 'config' object".to_string());
    }
    Ok(())
}

/// Recursively blanks every value whose object key contains the wall
/// marker, leaving the key in place — the same shape-preserving mask CI
/// applies before `cmp`-style determinism checks.
pub fn mask_wall(json: &Json) -> Json {
    match json {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .map(|(k, v)| {
                    if k.contains(WALL_MARKER) {
                        (k.clone(), Json::Null)
                    } else {
                        (k.clone(), mask_wall(v))
                    }
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(mask_wall).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        envelope(
            "demo",
            "cb-bench-demo/v1",
            "widgets per run",
            Json::obj().with("quick", true),
        )
        .with("rows", Json::Arr(vec![Json::obj().with("widgets", 3u64)]))
        .with("summary", Json::obj().with("total", 3u64))
    }

    #[test]
    fn envelope_satisfies_its_own_validator() {
        let json = sample();
        validate(&json, "demo", "cb-bench-demo/v1", "rows").expect("valid");
        validate_schema_and_rows(&json, "cb-bench-demo/v1", "rows").expect("valid light");
    }

    #[test]
    fn validator_rejects_each_missing_piece() {
        let json = sample();
        assert!(validate(&json, "other", "cb-bench-demo/v1", "rows").is_err());
        assert!(validate(&json, "demo", "cb-bench-demo/v2", "rows").is_err());
        assert!(validate(&json, "demo", "cb-bench-demo/v1", "sizes").is_err());
        let empty_rows = sample().with("rows", Json::Arr(vec![]));
        assert!(validate(&empty_rows, "demo", "cb-bench-demo/v1", "rows").is_err());
        let no_summary = envelope("demo", "cb-bench-demo/v1", "u", Json::obj())
            .with("rows", Json::Arr(vec![Json::Null]));
        assert!(validate(&no_summary, "demo", "cb-bench-demo/v1", "rows").is_err());
    }

    #[test]
    fn mask_blanks_wall_keys_at_any_depth() {
        let json = Json::obj()
            .with("secs_wall", 1.25)
            .with("events", 10u64)
            .with(
                "nested",
                Json::Arr(vec![Json::obj()
                    .with("events_per_sec_wall", 99.0)
                    .with("fingerprint", "0xab")]),
            );
        let masked = mask_wall(&json);
        assert_eq!(masked.get("secs_wall"), Some(&Json::Null));
        assert_eq!(masked.get("events"), Some(&Json::Num(10.0)));
        let inner = &masked.get("nested").and_then(Json::as_array).unwrap()[0];
        assert_eq!(inner.get("events_per_sec_wall"), Some(&Json::Null));
        assert_eq!(
            inner.get("fingerprint"),
            Some(&Json::Str("0xab".to_string()))
        );
        // Masking twice is a fixed point.
        assert_eq!(
            mask_wall(&masked).to_string_compact(),
            masked.to_string_compact()
        );
    }
}
