//! Plain-text and JSON rendering of experiment tables.

use cb_harness::Json;
use std::fmt;

/// A rendered experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "E2".
    pub id: &'static str,
    /// Title shown above the table.
    pub title: String,
    /// What the paper reported, for side-by-side reading.
    pub paper: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: &'static str,
        title: impl Into<String>,
        paper: impl Into<String>,
        headers: &[&str],
    ) -> Self {
        Table {
            id,
            title: title.into(),
            paper: paper.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The table as JSON (one object per row, keyed by header).
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                let mut obj = Json::obj();
                for (h, v) in self.headers.iter().zip(r) {
                    obj.set(h.as_str(), v.as_str());
                }
                obj
            })
            .collect();
        Json::obj()
            .with("experiment", self.id)
            .with("title", self.title.as_str())
            .with("paper", self.paper.as_str())
            .with("rows", Json::Arr(rows))
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "   paper: {}", self.paper)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "   {}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "   {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "   {}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "demo", "n/a", &["name", "value"]);
        t.push(vec!["a".into(), "1".into()]);
        t.push(vec!["longer".into(), "2".into()]);
        let text = format!("{t}");
        assert!(text.contains("E0"));
        assert!(text.contains("longer"));
        assert_eq!(text.lines().count(), 6);
    }

    #[test]
    fn json_round_trip() {
        let mut t = Table::new("E9", "j", "p", &["k"]);
        t.push(vec!["v".into()]);
        let j = t.to_json();
        assert_eq!(j.get("experiment").and_then(Json::as_str), Some("E9"));
        let rows = j.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows[0].get("k").and_then(Json::as_str), Some("v"));
        // And it survives a parse round-trip through the writer.
        let back = Json::parse(&j.to_string_pretty()).unwrap();
        assert_eq!(back.get("experiment").and_then(Json::as_str), Some("E9"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("E9", "j", "p", &["a", "b"]);
        t.push(vec!["only one".into()]);
    }
}
