//! The overload-survival throughput benchmark (`throughput` binary,
//! `BENCH_throughput.json`).
//!
//! Drives the replicated KV scenario with the open-loop workload arms —
//! `steady`, `flash`, and the deliberately unprotected `flash-off` — and
//! records each arm's offered/served/shed trajectory together with the
//! governor's response: load-cause step-downs, recoveries, the final
//! fleet rung, and per-state dwell (sim-ns in Healthy/Degraded/Survival).
//!
//! Three properties are gated on every full run, not just reported:
//!
//! * **Step-down and recovery** — the flash arm must shed load, step the
//!   governor down on the load signal at least once, recover at least
//!   once, and end with every node back at rung 0 (Healthy).
//! * **Goodput floor** — the admission-controlled arms must serve at
//!   least their profile's floor fraction of offered requests.
//! * **Metastability detection** — the `flash-off` arm (admission off,
//!   unbounded retries) must be flagged metastable by the harness oracle
//!   on its pinned seed; a silent pass means the detector broke.
//!
//! Wall-clock seconds are real measurements and vary by machine; every
//! such key carries a `_wall` suffix so the determinism harness can mask
//! them. Everything else in `BENCH_throughput.json` (counts, goodput,
//! governor dwell, fingerprints) is a pure function of the seed and must
//! be byte-identical across runs.

use cb_harness::json::Json;
use cb_harness::prelude::*;
use cb_kv::KvCampaign;
use cb_simnet::prelude::*;
use cb_telemetry::keys;
use cb_workload::WorkloadProfile;

/// Per-state governor dwell across the fleet (from the merged single-
/// sample-per-node histograms).
#[derive(Clone, Debug, Default)]
pub struct StateDwell {
    /// Nodes that reported a dwell sample for this state.
    pub nodes: u64,
    /// Mean sim-ns per node.
    pub mean_ns: f64,
    /// Worst node's sim-ns.
    pub max_ns: u64,
}

/// One measured workload arm.
#[derive(Clone, Debug)]
pub struct WorkloadArmResult {
    /// Profile name (`steady`, `flash`, `flash-off`).
    pub profile: &'static str,
    /// Campaign seed for this arm.
    pub seed: u64,
    /// User requests offered by the generator.
    pub offered: u64,
    /// Send attempts, retries included.
    pub attempts: u64,
    /// Requests confirmed served within the deadline.
    pub served: u64,
    /// Requests admitted by the replicas.
    pub admitted: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests that expired in queue (wasted capacity).
    pub expired: u64,
    /// Requests scheduled for another attempt.
    pub retries: u64,
    /// Requests that exhausted their retry budget.
    pub failed: u64,
    /// Governor step-downs attributed to the load signal.
    pub cause_load: u64,
    /// Governor recoveries (any upward transition).
    pub recoveries: u64,
    /// Worst node's rung at the horizon (0 = whole fleet Healthy).
    pub rung_final: i64,
    /// Fleet dwell in each governor state.
    pub healthy: StateDwell,
    /// Fleet dwell in Degraded.
    pub degraded: StateDwell,
    /// Fleet dwell in Survival.
    pub survival: StateDwell,
    /// Whether the metastability oracle flagged the run.
    pub metastable: bool,
    /// Every failing oracle name (empty on a clean run).
    pub failing: Vec<String>,
    /// Engine events dispatched (the aggregate-flow cost of the run).
    pub events: u64,
    /// Run fingerprint (seed-exact).
    pub fingerprint: u64,
    /// Wall-clock seconds (machine-dependent).
    pub wall_secs: f64,
}

impl WorkloadArmResult {
    /// Served over offered (0 when nothing was offered).
    pub fn goodput(&self) -> f64 {
        if self.offered > 0 {
            self.served as f64 / self.offered as f64
        } else {
            0.0
        }
    }

    /// Attempts per offered request — retry amplification.
    pub fn amplification(&self) -> f64 {
        if self.offered > 0 {
            self.attempts as f64 / self.offered as f64
        } else {
            0.0
        }
    }
}

fn dwell(reg: &cb_telemetry::Registry, key: &str) -> StateDwell {
    reg.hist(key)
        .map(|h| StateDwell {
            nodes: h.count(),
            mean_ns: h.mean(),
            max_ns: h.max(),
        })
        .unwrap_or_default()
}

/// Runs one workload arm of the KV scenario, fault-free, and extracts its
/// overload trajectory from the merged fleet telemetry.
pub fn run_arm(profile: &'static str, seed: u64, horizon: SimTime) -> WorkloadArmResult {
    let p = WorkloadProfile::by_name(profile).expect("registered workload profile");
    let s = KvCampaign {
        workload: Some(p),
        horizon,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let r = s.run(seed, &FaultPlan::none());
    let wall_secs = t0.elapsed().as_secs_f64();
    let t = &r.telemetry;
    WorkloadArmResult {
        profile,
        seed,
        offered: t.counter(keys::WORKLOAD_OFFERED),
        attempts: t.counter(keys::WORKLOAD_ATTEMPTS),
        served: t.counter(keys::WORKLOAD_SERVED),
        admitted: t.counter(keys::WORKLOAD_ADMITTED),
        shed: t.counter(keys::WORKLOAD_SHED),
        expired: t.counter(keys::WORKLOAD_EXPIRED),
        retries: t.counter(keys::WORKLOAD_RETRIES),
        failed: t.counter(keys::WORKLOAD_FAILED),
        cause_load: t.counter(keys::CORE_GOVERNOR_CAUSE_LOAD),
        recoveries: t.counter(keys::CORE_GOVERNOR_RECOVERIES),
        rung_final: t.gauge(keys::CORE_GOVERNOR_RUNG),
        healthy: dwell(t, keys::CORE_GOVERNOR_HEALTHY_NS),
        degraded: dwell(t, keys::CORE_GOVERNOR_DEGRADED_NS),
        survival: dwell(t, keys::CORE_GOVERNOR_SURVIVAL_NS),
        metastable: r
            .failing_oracles()
            .contains(&cb_harness::overload::METASTABLE_ORACLE),
        failing: r
            .failing_oracles()
            .into_iter()
            .map(str::to_string)
            .collect(),
        events: r.events_processed,
        fingerprint: r.fingerprint,
        wall_secs,
    }
}

/// The three benchmark arms with their pinned seeds: the surviving arms
/// run `base_seed`; the metastable arm runs the seed its detection is
/// regression-pinned to (the same one `cb-kv`'s storm test uses).
pub fn arm_plan(base_seed: u64) -> Vec<(&'static str, u64)> {
    vec![
        ("steady", base_seed),
        ("flash", base_seed),
        ("flash-off", 33),
    ]
}

/// Gate failures over a full (non-quick) run; empty means all gates hold.
pub fn gate_failures(arms: &[WorkloadArmResult]) -> Vec<String> {
    let mut fails = Vec::new();
    let arm = |name: &str| arms.iter().find(|a| a.profile == name);
    if let Some(a) = arm("steady") {
        if a.goodput() < 0.5 {
            fails.push(format!(
                "steady: goodput {:.2} under the 0.5 floor",
                a.goodput()
            ));
        }
        if a.rung_final != 0 {
            fails.push(format!(
                "steady: fleet at rung {} at the horizon",
                a.rung_final
            ));
        }
    }
    if let Some(a) = arm("flash") {
        if a.shed == 0 {
            fails.push("flash: admission shed nothing under a 6x crowd".into());
        }
        if a.cause_load == 0 {
            fails.push("flash: governor never stepped down on the load signal".into());
        }
        if a.recoveries == 0 {
            fails.push("flash: governor never recovered after the crowd".into());
        }
        if a.rung_final != 0 {
            fails.push(format!(
                "flash: fleet stuck at rung {} at the horizon",
                a.rung_final
            ));
        }
        if a.goodput() < 0.33 {
            fails.push(format!(
                "flash: goodput {:.2} under the 0.33 floor",
                a.goodput()
            ));
        }
        if a.metastable {
            fails.push("flash: protected arm flagged metastable".into());
        }
    }
    if let Some(a) = arm("flash-off") {
        if !a.metastable {
            fails
                .push("flash-off: unprotected arm not flagged metastable (detector broke?)".into());
        }
    }
    fails
}

/// Schema tag of `BENCH_throughput.json`.
pub const THROUGHPUT_BENCH_SCHEMA: &str = "cb-bench-throughput/v1";

/// Serializes the benchmark into the `cb-bench-throughput/v1` schema (see
/// EXPERIMENTS.md §E13 and README "Reading BENCH_throughput.json"). Keys
/// with a `_wall` suffix are machine-dependent; everything else is
/// seed-deterministic.
pub fn to_json(arms: &[WorkloadArmResult], base_seed: u64, horizon: SimTime, quick: bool) -> Json {
    let dwell_json = |d: &StateDwell| {
        Json::obj()
            .with("nodes", d.nodes)
            .with("mean_sim_ns", d.mean_ns)
            .with("max_sim_ns", d.max_ns)
    };
    let rows: Vec<Json> = arms
        .iter()
        .map(|a| {
            Json::obj()
                .with("profile", a.profile)
                .with("seed", a.seed)
                .with("offered", a.offered)
                .with("attempts", a.attempts)
                .with("served", a.served)
                .with("admitted", a.admitted)
                .with("shed", a.shed)
                .with("expired", a.expired)
                .with("retries", a.retries)
                .with("failed", a.failed)
                .with("goodput", a.goodput())
                .with("amplification", a.amplification())
                .with(
                    "governor",
                    Json::obj()
                        .with("cause_load", a.cause_load)
                        .with("recoveries", a.recoveries)
                        .with("rung_final", a.rung_final.max(0) as u64)
                        .with("in_healthy", dwell_json(&a.healthy))
                        .with("in_degraded", dwell_json(&a.degraded))
                        .with("in_survival", dwell_json(&a.survival)),
                )
                .with("metastable", a.metastable)
                .with("failing_oracles", a.failing.to_vec())
                .with("events", a.events)
                .with("fingerprint", format!("{:#018x}", a.fingerprint))
                .with("secs_wall", a.wall_secs)
        })
        .collect();
    crate::benchjson::envelope(
        "throughput",
        THROUGHPUT_BENCH_SCHEMA,
        "aggregate user requests per arm; governor dwell in sim-ns; \
         fingerprints are seed-exact",
        Json::obj()
            .with("seed", base_seed)
            .with("horizon_ms", horizon.as_nanos() / 1_000_000)
            .with("quick", quick),
    )
    .with("arms", rows)
    .with(
        "summary",
        Json::obj()
            .with(
                "flash_recovered",
                arms.iter()
                    .any(|a| a.profile == "flash" && a.recoveries >= 1 && a.rung_final == 0),
            )
            .with(
                "metastable_detected",
                arms.iter()
                    .any(|a| a.profile == "flash-off" && a.metastable),
            )
            .with("goodput_gate_steady", 0.5)
            .with("goodput_gate_flash", 0.33),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_arm_is_deterministic_and_json_is_well_formed() {
        // Short horizon keeps this debug-mode cheap; the full horizons run
        // in the binary (and in CI's perf smoke).
        let horizon = SimTime::from_secs(120);
        let a = run_arm("steady", 7, horizon);
        let b = run_arm("steady", 7, horizon);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.served, b.served);
        assert!(a.offered > 0, "open loop offered nothing");
        let json = to_json(&[a], 7, horizon, true);
        let text = json.to_string_pretty();
        let back = Json::parse(&text).expect("bench artifact parses");
        crate::benchjson::validate(&back, "throughput", THROUGHPUT_BENCH_SCHEMA, "arms")
            .expect("shared envelope contract");
        // Wall keys (and only wall keys) survive masking blanked.
        let masked = crate::benchjson::mask_wall(&back);
        assert_eq!(
            masked.get("arms").and_then(Json::as_array).unwrap()[0].get("secs_wall"),
            Some(&Json::Null)
        );
        let rows = back.get("arms").and_then(Json::as_array).expect("arms");
        for row in rows {
            for key in [
                "profile",
                "offered",
                "served",
                "goodput",
                "governor",
                "metastable",
                "fingerprint",
                "secs_wall",
            ] {
                assert!(row.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn gates_read_the_arm_fields() {
        let mut a = run_arm("steady", 7, SimTime::from_secs(120));
        assert!(gate_failures(std::slice::from_ref(&a)).is_empty(), "{a:?}");
        a.served = 0;
        assert!(!gate_failures(std::slice::from_ref(&a)).is_empty());
    }
}
