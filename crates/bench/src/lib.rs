//! # cb-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (and the
//! quantified §3.1 claims) over the crates of this workspace. The
//! `tables` binary prints them; the `campaign` binary sweeps seeds with
//! fault injection over the registered scenarios (see [`registry`]); the
//! `decisions` binary benchmarks the choice-resolution hot path (see
//! [`decisions`]) and emits `BENCH_decision.json`. See `EXPERIMENTS.md` at
//! the repository root for the paper-vs-measured record and `DESIGN.md`
//! for the experiment index.

pub mod benchjson;
pub mod codemetrics;
pub mod decisions;
pub mod experiments;
pub mod models;
pub mod registry;
pub mod simnet;
pub mod steeringlab;
pub mod table;
pub mod throughput;

pub use experiments::{all, Scale};
pub use table::Table;
