//! The simulator hot-loop benchmark (`simnet_bench` binary,
//! `BENCH_simnet.json`).
//!
//! Drives an identical message/timer workload through the four engine
//! arms — `{heap, wheel} × {full, lite}` — at fleet sizes from 100 to
//! 10 000 nodes and records the events/sec trajectory. The heap arms run
//! the pre-wheel `BinaryHeap` scheduler kept as the differential
//! reference; the lite arms disable rendered-string tracing in favor of
//! compact word fingerprints, which is how large campaigns actually run.
//!
//! Two properties are checked on every run, not just reported:
//!
//! * **Equivalence** — within a trace mode, heap and wheel must produce
//!   the same fingerprint and process the same number of events. A
//!   mismatch is a scheduler bug and panics the bench.
//! * **Performance** — the wheel must not regress like-for-like
//!   (`wheel_full ≥ 0.85 × heap_full` events/sec — a 10% regression
//!   allowance plus a measurement guard band: at small fleets tracing
//!   dominates and the schedulers measure within noise of parity) and
//!   the shipped
//!   configuration must clear the headline bar
//!   (`wheel_lite ≥ 5 × heap_full` at the largest size). The binary exits
//!   nonzero otherwise.
//!
//! Wall-clock rates are real measurements and vary by machine; every such
//! key carries a `_wall` suffix so the determinism harness can mask them.
//! Everything else in `BENCH_simnet.json` (event counts, fingerprints,
//! config) is a pure function of the seed and must be byte-identical
//! across runs.

use cb_harness::json::Json;
use cb_simnet::prelude::*;

/// One measured (scheduler, mode, size) cell.
#[derive(Clone, Debug)]
pub struct ArmResult {
    /// `"heap"` or `"wheel"`.
    pub scheduler: &'static str,
    /// `"full"` or `"lite"`.
    pub mode: &'static str,
    /// Events dispatched by the engine over the horizon.
    pub events: u64,
    /// Trace fingerprint (mode-specific; comparable within a mode).
    pub fingerprint: u64,
    /// Wall-clock seconds for the run loop (machine-dependent).
    pub wall_secs: f64,
}

impl ArmResult {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// All four arms at one fleet size, plus the derived ratios.
#[derive(Clone, Debug)]
pub struct SizeBench {
    /// Fleet size (hosts).
    pub nodes: usize,
    /// `heap_full`, `wheel_full`, `heap_lite`, `wheel_lite` in that order.
    pub arms: Vec<ArmResult>,
    /// Process high-water RSS in kB after this size's arms (0 if the
    /// platform does not expose `/proc/self/status`).
    pub peak_rss_kb: u64,
}

impl SizeBench {
    fn arm(&self, scheduler: &str, mode: &str) -> &ArmResult {
        self.arms
            .iter()
            .find(|a| a.scheduler == scheduler && a.mode == mode)
            .expect("all four arms present")
    }

    /// Like-for-like scheduler ratio: wheel events/sec over heap, full mode.
    pub fn wheel_full_vs_heap_full(&self) -> f64 {
        let h = self.arm("heap", "full").events_per_sec();
        if h > 0.0 {
            self.arm("wheel", "full").events_per_sec() / h
        } else {
            0.0
        }
    }

    /// Headline ratio: the shipped configuration (wheel + lite tracing)
    /// over the pre-PR baseline (heap + full tracing).
    pub fn speedup_vs_baseline(&self) -> f64 {
        let h = self.arm("heap", "full").events_per_sec();
        if h > 0.0 {
            self.arm("wheel", "lite").events_per_sec() / h
        } else {
            0.0
        }
    }
}

/// The deterministic load shape: every node runs a repeating tick timer;
/// each tick fans out two unreliable datagrams to random peers and every
/// eighth tick opens/uses a reliable connection. Exercises the scheduler's
/// full event mix — timers, sends, deliveries, handshakes — with zero
/// quiescence (ticks re-arm forever, the horizon bounds the run).
struct LoadActor {
    n: u32,
    tick: SimDuration,
}

impl Actor for LoadActor {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        // Stagger first ticks so 10k timers don't all land on one slot.
        let jitter = SimDuration::from_nanos(ctx.rng().gen_below(self.tick.as_nanos()));
        ctx.set_timer(self.tick + jitter, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _timer: TimerId, tag: u64) {
        for _ in 0..2 {
            let to = NodeId(ctx.rng().gen_below(self.n as u64) as u32);
            if to != ctx.id() {
                ctx.send_unreliable(to, tag as u32);
            }
        }
        if tag.is_multiple_of(8) {
            let to = NodeId(ctx.rng().gen_below(self.n as u64) as u32);
            if to != ctx.id() {
                ctx.send(to, u32::MAX);
            }
        }
        ctx.set_timer(self.tick, tag + 1);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: NodeId, _msg: u32) {}
}

fn run_arm(
    topo: &Topology,
    nodes: usize,
    seed: u64,
    kind: SchedulerKind,
    lite: bool,
    horizon: SimTime,
    tick: SimDuration,
) -> ArmResult {
    let n = nodes as u32;
    let mut sim = Sim::new_with_scheduler(topo.clone(), seed, kind, move |_| LoadActor { n, tick });
    if lite {
        sim.set_lite(true);
    }
    sim.start_all();
    let t0 = std::time::Instant::now();
    sim.run_until(horizon);
    let wall_secs = t0.elapsed().as_secs_f64();
    ArmResult {
        scheduler: match kind {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Wheel => "wheel",
        },
        mode: if lite { "lite" } else { "full" },
        events: sim.events_processed(),
        fingerprint: sim.trace().fingerprint(),
        wall_secs,
    }
}

/// Measurement repeats per arm. The gates compare ratios of wall-clock
/// rates, so each arm is timed several times and the fastest repeat wins
/// — the steady-state figure, least disturbed by allocator state and page
/// reclaim (the full-trace 10k arms touch ~1 GB). Cheap arms (lite mode,
/// small fleets) get extra repeats: their individual runs are short, so a
/// single unlucky scheduling hiccup shifts the ratio the most there.
fn reps_for(nodes: usize, lite: bool) -> usize {
    if lite || nodes <= 1000 {
        5
    } else {
        3
    }
}

/// Process high-water RSS in kB from `/proc/self/status`, 0 if unreadable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Runs all four arms at one fleet size and verifies scheduler
/// equivalence within each trace mode.
///
/// # Panics
///
/// Panics if heap and wheel disagree on the fingerprint or event count in
/// either mode — that is a scheduler correctness bug, not a perf result.
pub fn run_size(nodes: usize, seed: u64, horizon: SimTime, tick: SimDuration) -> SizeBench {
    let topo = Topology::transit_stub_exact(
        &TransitStubConfig::balanced_for(nodes),
        nodes,
        &mut SimRng::seed_from(seed ^ 0x00B5_EED0_u64),
    );
    // Repeats are interleaved across the arms (heap, wheel, heap, wheel,
    // …) rather than run back to back, so machine-throughput drift over
    // the measurement window hits every arm alike and the gate ratios
    // compare like conditions with like.
    let combos = [
        (SchedulerKind::Heap, false),
        (SchedulerKind::Wheel, false),
        (SchedulerKind::Heap, true),
        (SchedulerKind::Wheel, true),
    ];
    let mut arms: Vec<ArmResult> = Vec::with_capacity(combos.len());
    let max_reps = combos
        .iter()
        .map(|&(_, lite)| reps_for(nodes, lite))
        .max()
        .unwrap_or(1);
    for rep in 0..max_reps {
        for (i, &(kind, lite)) in combos.iter().enumerate() {
            if rep >= reps_for(nodes, lite) {
                continue;
            }
            let r = run_arm(&topo, nodes, seed, kind, lite, horizon, tick);
            if rep == 0 {
                arms.push(r);
            } else {
                assert_eq!(
                    (arms[i].events, arms[i].fingerprint),
                    (r.events, r.fingerprint),
                    "{nodes} nodes, {} {}: bench repeat nondeterministic",
                    r.scheduler,
                    r.mode
                );
                arms[i].wall_secs = arms[i].wall_secs.min(r.wall_secs);
            }
        }
    }
    for mode in ["full", "lite"] {
        let (h, w) = (
            arms.iter()
                .find(|a| a.scheduler == "heap" && a.mode == mode),
            arms.iter()
                .find(|a| a.scheduler == "wheel" && a.mode == mode),
        );
        let (h, w) = (h.expect("heap arm"), w.expect("wheel arm"));
        assert_eq!(
            h.fingerprint, w.fingerprint,
            "{nodes} nodes, {mode} mode: heap and wheel fingerprints diverge"
        );
        assert_eq!(
            h.events, w.events,
            "{nodes} nodes, {mode} mode: event counts diverge"
        );
    }
    SizeBench {
        nodes,
        arms,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Schema tag of `BENCH_simnet.json`.
pub const SIMNET_BENCH_SCHEMA: &str = "cb-bench-simnet/v1";

/// Serializes the benchmark into the `cb-bench-simnet/v1` schema (see
/// EXPERIMENTS.md, "Reading BENCH_simnet.json"). Keys with a `_wall`
/// suffix are machine-dependent; everything else is seed-deterministic.
pub fn to_json(sizes: &[SizeBench], seed: u64, horizon: SimTime, quick: bool) -> Json {
    let rows: Vec<Json> = sizes
        .iter()
        .map(|s| {
            let arms: Vec<Json> = s
                .arms
                .iter()
                .map(|a| {
                    Json::obj()
                        .with("scheduler", a.scheduler)
                        .with("mode", a.mode)
                        .with("events", a.events)
                        .with("fingerprint", format!("{:#018x}", a.fingerprint))
                        .with("secs_wall", a.wall_secs)
                        .with("events_per_sec_wall", a.events_per_sec())
                })
                .collect();
            Json::obj()
                .with("nodes", s.nodes)
                .with("events", s.arm("wheel", "lite").events)
                .with(
                    "fingerprint_full",
                    format!("{:#018x}", s.arm("wheel", "full").fingerprint),
                )
                .with(
                    "fingerprint_lite",
                    format!("{:#018x}", s.arm("wheel", "lite").fingerprint),
                )
                .with("arms", arms)
                .with("wheel_full_vs_heap_full_wall", s.wheel_full_vs_heap_full())
                .with("speedup_vs_baseline_wall", s.speedup_vs_baseline())
                .with("peak_rss_kb_wall", s.peak_rss_kb)
        })
        .collect();
    let largest = sizes.iter().max_by_key(|s| s.nodes);
    crate::benchjson::envelope(
        "simnet",
        SIMNET_BENCH_SCHEMA,
        "engine events dispatched per wall-clock second; fingerprints are seed-exact",
        Json::obj()
            .with("seed", seed)
            .with("horizon_ms", horizon.as_nanos() / 1_000_000)
            .with("quick", quick),
    )
    .with("sizes", rows)
    .with(
        "summary",
        Json::obj()
            .with("largest_nodes", largest.map(|s| s.nodes).unwrap_or(0))
            .with(
                "speedup_largest_wall",
                largest.map(|s| s.speedup_vs_baseline()).unwrap_or(0.0),
            )
            .with("speedup_gate", 5.0)
            .with("like_for_like_gate", 0.85),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_agree_and_json_is_well_formed() {
        // Tiny sizes so this stays debug-mode cheap; the equivalence
        // asserts inside run_size are the real payload.
        let sizes: Vec<SizeBench> = [40usize, 120]
            .iter()
            .map(|&n| {
                run_size(
                    n,
                    7,
                    SimTime::from_millis(1500),
                    SimDuration::from_millis(200),
                )
            })
            .collect();
        for s in &sizes {
            assert_eq!(s.arms.len(), 4);
            assert!(s.arm("wheel", "lite").events > 0);
            // Event counts are mode-independent too: tracing must never
            // change what the engine dispatches.
            assert_eq!(s.arm("wheel", "full").events, s.arm("wheel", "lite").events);
        }
        let json = to_json(&sizes, 7, SimTime::from_millis(1500), true);
        let text = json.to_string_pretty();
        let back = Json::parse(&text).expect("bench artifact parses");
        crate::benchjson::validate(&back, "simnet", SIMNET_BENCH_SCHEMA, "sizes")
            .expect("shared envelope contract");
        let rows = back.get("sizes").and_then(Json::as_array).expect("sizes");
        assert_eq!(rows.len(), 2);
        for row in rows {
            for key in [
                "nodes",
                "events",
                "fingerprint_full",
                "fingerprint_lite",
                "arms",
                "wheel_full_vs_heap_full_wall",
                "speedup_vs_baseline_wall",
                "peak_rss_kb_wall",
            ] {
                assert!(row.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn deterministic_sections_are_stable_across_runs() {
        let run = || {
            run_size(
                60,
                11,
                SimTime::from_millis(1200),
                SimDuration::from_millis(150),
            )
        };
        let (a, b) = (run(), run());
        for (x, y) in a.arms.iter().zip(&b.arms) {
            assert_eq!(x.events, y.events);
            assert_eq!(x.fingerprint, y.fingerprint);
        }
    }
}
