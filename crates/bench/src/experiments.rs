//! The experiment runners: one function per paper artifact.
//!
//! Each returns a [`Table`] whose rows mirror what the paper reports (see
//! `EXPERIMENTS.md` at the repository root for the side-by-side record).
//! `Scale::quick()` shrinks sizes and seed counts for CI; `Scale::paper()`
//! runs the full configurations.

use crate::codemetrics::e1_metrics;
use crate::models::{flood_coverage, Flood, FloodState};
use crate::table::Table;
use cb_dissem::{run_swarm, BlockStrategy, SwarmConfig, TrackerPolicy};
use cb_gossip::{run_gossip, GossipConfig, PeerStrategy};
use cb_mck::explore::ExploreConfig;
use cb_mck::props::Property;
use cb_paxos::{run_paxos, PaxosConfig, ProposerRegime};
use cb_randtree::{optimal_depth, run_failure_rejoin, run_join, ScenarioConfig, Setup};
use cb_simnet::time::SimDuration;
use std::time::Instant;

/// Experiment sizing.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Seeds averaged per cell.
    pub seeds: u64,
    /// Full (paper) sizes when true; shrunken CI sizes when false.
    pub full: bool,
}

impl Scale {
    /// CI-friendly sizes.
    pub fn quick() -> Scale {
        Scale {
            seeds: 2,
            full: false,
        }
    }

    /// Paper-scale sizes.
    pub fn paper() -> Scale {
        Scale {
            seeds: 5,
            full: true,
        }
    }
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "∞".to_string()
    }
}

/// E1 — code metrics of the two RandTree implementations.
pub fn e1(_scale: Scale) -> Table {
    let (base, choice) = e1_metrics();
    let mut t = Table::new(
        "E1",
        "RandTree code metrics: baseline vs choice-exposed",
        "LoC 487 -> 280 (-43%); if-else per handler 1.94 -> 0.28",
        &[
            "implementation",
            "loc",
            "statements",
            "handler loc",
            "handlers",
            "ifs",
            "ifs/handler",
        ],
    );
    for (label, m) in [("Baseline", &base), ("Choice-exposed", &choice)] {
        t.push(vec![
            label.to_string(),
            m.loc.to_string(),
            m.statements.to_string(),
            m.handler_loc.to_string(),
            m.handlers.to_string(),
            m.ifs.to_string(),
            format!("{:.2}", m.ifs_per_handler()),
        ]);
    }
    // Statements are the formatting-invariant size proxy; raw line counts
    // shift with rustfmt's reflowing.
    let reduction = 100.0 * (1.0 - choice.statements as f64 / base.statements as f64);
    t.push(vec![
        "statement reduction".to_string(),
        String::new(),
        format!("{reduction:.0}%"),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t
}

/// E2 — 31-node join: max tree depth per setup.
pub fn e2(scale: Scale) -> Table {
    let nodes = 31;
    let mut t = Table::new(
        "E2",
        format!(
            "RandTree join, {nodes} nodes (optimal depth {})",
            optimal_depth(nodes, 2)
        ),
        "max depth 6 in all setups (optimal 5)",
        &[
            "setup",
            "mean max depth",
            "worst",
            "mean depth",
            "decisions/run",
        ],
    );
    for setup in Setup::ALL {
        let mut depths = Vec::new();
        let mut means = Vec::new();
        let mut decisions = 0u64;
        for seed in 1..=scale.seeds {
            let cfg = ScenarioConfig {
                nodes,
                seed,
                ..Default::default()
            };
            let out = run_join(&cfg, setup);
            assert!(
                out.after_join.well_formed,
                "{setup:?} produced a malformed tree"
            );
            depths.push(out.after_join.max_depth as f64);
            means.push(out.after_join.mean_depth);
            decisions += out.decisions;
        }
        t.push(vec![
            setup.label().to_string(),
            fmt_f(depths.iter().sum::<f64>() / depths.len() as f64),
            fmt_f(depths.iter().cloned().fold(0.0, f64::max)),
            fmt_f(means.iter().sum::<f64>() / means.len() as f64),
            (decisions / scale.seeds).to_string(),
        ]);
    }
    t
}

/// E3 — subtree failure and rejoin: max depth per setup.
pub fn e3(scale: Scale) -> Table {
    let nodes = 31;
    let mut t = Table::new(
        "E3",
        format!("RandTree subtree failure + rejoin, {nodes} nodes"),
        "max depth: Baseline 10, Choice-Random 10, Choice-CrystalBall 9",
        &["setup", "mean max depth", "worst", "mean depth"],
    );
    for setup in Setup::ALL {
        let mut depths = Vec::new();
        let mut means = Vec::new();
        for seed in 1..=scale.seeds {
            let cfg = ScenarioConfig {
                nodes,
                seed,
                ..Default::default()
            };
            let out = run_failure_rejoin(&cfg, setup);
            let stats = out.after_rejoin.expect("rejoin stats");
            assert!(
                stats.well_formed,
                "{setup:?} produced a malformed tree after rejoin"
            );
            depths.push(stats.max_depth as f64);
            means.push(stats.mean_depth);
        }
        t.push(vec![
            setup.label().to_string(),
            fmt_f(depths.iter().sum::<f64>() / depths.len() as f64),
            fmt_f(depths.iter().cloned().fold(0.0, f64::max)),
            fmt_f(means.iter().sum::<f64>() / means.len() as f64),
        ]);
    }
    t
}

/// E4 — gossip strategies under Byzantine and slow-uplink pressure.
pub fn e4(scale: Scale) -> Table {
    let nodes = if scale.full { 64 } else { 24 };
    let mut t = Table::new(
        "E4",
        format!("Gossip dissemination, {nodes} nodes: t90 seconds (lower is better)"),
        "restricted choice robust to Byzantine nodes; relaxing the choice wins on performance (BAR Gossip / FlightPath)",
        &["setting", "Restricted", "FreeRandom", "Runtime-Resolved"],
    );
    // Cells report t90 over honest nodes, with the fast-honest t90 in
    // parentheses when a slow cohort exists.
    let settings: Vec<(&str, f64, f64)> = if scale.full {
        vec![
            ("clean", 0.0, 0.0),
            ("byz 10%", 0.10, 0.0),
            ("byz 30%", 0.30, 0.0),
            ("slow 30%", 0.0, 0.30),
            ("byz 20% + slow 30%", 0.20, 0.30),
        ]
    } else {
        vec![
            ("clean", 0.0, 0.0),
            ("byz 30%", 0.30, 0.0),
            ("slow 30%", 0.0, 0.30),
        ]
    };
    for (label, byz, slow) in settings {
        let mut cells = Vec::new();
        for strategy in [
            PeerStrategy::Restricted,
            PeerStrategy::FreeRandom,
            PeerStrategy::Resolved,
        ] {
            let mut total = 0.0;
            let mut fast_total = 0.0;
            for seed in 1..=scale.seeds {
                let cfg = GossipConfig {
                    nodes,
                    byzantine_frac: byz,
                    slow_frac: slow,
                    seed,
                    rumors: if scale.full { 8 } else { 4 },
                    horizon: SimDuration::from_secs(if scale.full { 120 } else { 60 }),
                    ..Default::default()
                };
                let out = run_gossip(&cfg, strategy);
                total += out.t90_secs.unwrap_or(cfg.horizon.as_secs_f64());
                fast_total += out.t90_fast_secs.unwrap_or(cfg.horizon.as_secs_f64());
            }
            let k = scale.seeds as f64;
            if slow > 0.0 {
                cells.push(format!("{} ({})", fmt_f(total / k), fmt_f(fast_total / k)));
            } else {
                cells.push(fmt_f(total / k));
            }
        }
        let mut row = vec![label.to_string()];
        row.extend(cells);
        t.push(row);
    }
    t
}

/// E5 — block-selection strategies across seed-capacity settings.
pub fn e5(scale: Scale) -> Table {
    let peers = if scale.full { 32 } else { 12 };
    let blocks = if scale.full { 64 } else { 32 };
    let mut t = Table::new(
        "E5",
        format!("Swarm download, {peers} peers x {blocks} blocks: last-finisher seconds"),
        "neither random nor rarest-random is decidedly superior across settings (BulletPrime)",
        &["setting", "Random", "Rarest-Random", "Runtime-Resolved"],
    );
    let settings: &[(&str, u64)] = &[
        ("constrained seed (2 Mbps)", 2_000_000),
        ("ample seed (20 Mbps)", 20_000_000),
    ];
    for &(label, seed_bps) in settings {
        let mut cells = Vec::new();
        for strategy in [
            BlockStrategy::Random,
            BlockStrategy::RarestRandom,
            BlockStrategy::Resolved,
        ] {
            let mut total = 0.0;
            for seed in 1..=scale.seeds {
                let cfg = SwarmConfig {
                    peers,
                    blocks,
                    seed_uplink_bps: seed_bps,
                    horizon: SimDuration::from_secs(1800),
                    seed,
                    ..Default::default()
                };
                let out = run_swarm(&cfg, strategy);
                total += out.max_time_secs;
            }
            cells.push(fmt_f(total / scale.seeds as f64));
        }
        let mut row = vec![label.to_string()];
        row.extend(cells);
        t.push(row);
    }
    t
}

/// E6 — tracker bias: ISP transit bytes vs completion time.
pub fn e6(scale: Scale) -> Table {
    let peers = if scale.full { 48 } else { 16 };
    let mut t = Table::new(
        "E6",
        format!("Tracker peer-choice bias, {peers} peers in 4 domains"),
        "biasing the tracker's exposed peer choice reduces ISP cost (P4P)",
        &["tracker", "transit MB", "mean time s", "last finisher s"],
    );
    for policy in [
        TrackerPolicy::Random,
        TrackerPolicy::LocalityBiased {
            local_fraction: 0.8,
        },
    ] {
        let mut transit = 0.0;
        let mut mean_t = 0.0;
        let mut max_t = 0.0;
        for seed in 1..=scale.seeds {
            let cfg = SwarmConfig {
                peers,
                blocks: if scale.full { 64 } else { 32 },
                tracker: policy,
                horizon: SimDuration::from_secs(1800),
                seed,
                ..Default::default()
            };
            let out = run_swarm(&cfg, BlockStrategy::RarestRandom);
            transit += out.transit_bytes as f64 / 1e6;
            mean_t += out.mean_time_secs;
            max_t += out.max_time_secs;
        }
        let k = scale.seeds as f64;
        t.push(vec![
            policy.label().to_string(),
            fmt_f(transit / k),
            fmt_f(mean_t / k),
            fmt_f(max_t / k),
        ]);
    }
    t
}

/// E7 — proposer regimes across load levels.
pub fn e7(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7",
        "Paxos proposer choice on a 5-region WAN: mean / p99 commit latency (s)",
        "fixed leader degrades under load; rotating proposers win on WANs (Mencius); expose the proposer choice",
        &["load", "Fixed leader", "Round-robin", "Runtime-Resolved"],
    );
    let loads: &[(&str, u64)] = &[("moderate (4/s/client)", 250), ("high (16/s/client)", 62)];
    for &(label, period_ms) in loads {
        let mut cells = Vec::new();
        for regime in [
            ProposerRegime::FixedLeader,
            ProposerRegime::RoundRobin,
            ProposerRegime::Resolved,
        ] {
            let mut mean = 0.0;
            let mut p99 = 0.0;
            for seed in 1..=scale.seeds {
                let cfg = PaxosConfig {
                    clients: if scale.full { 10 } else { 5 },
                    commands_per_client: if scale.full { 40 } else { 20 },
                    submit_period: SimDuration::from_millis(period_ms),
                    horizon: SimDuration::from_secs(300),
                    seed,
                    ..Default::default()
                };
                let out = run_paxos(&cfg, regime);
                mean += out.mean_latency_secs;
                p99 += out.p99_latency_secs;
            }
            let k = scale.seeds as f64;
            cells.push(format!("{} / {}", fmt_f(mean / k), fmt_f(p99 / k)));
        }
        let mut row = vec![label.to_string()];
        row.extend(cells);
        t.push(row);
    }
    t
}

/// E8 — consequence prediction vs exhaustive BFS over a flooding protocol.
pub fn e8(scale: Scale) -> Table {
    let n = if scale.full { 10 } else { 6 };
    let sys = Flood { n, fanout: 2 };
    let mut t = Table::new(
        "E8",
        format!("Future exploration over a {n}-node flood: states visited (time ms)"),
        "consequence prediction looks several levels into the future quickly (CrystalBall)",
        &[
            "depth",
            "exhaustive BFS",
            "consequence prediction",
            "pruning",
        ],
    );
    let props = [Property::safety("coverage below 100%", |s: &FloodState| {
        flood_coverage(s) < 1.0
    })];
    for depth in 1..=6 {
        let cfg = ExploreConfig {
            max_depth: depth,
            max_states: 2_000_000,
            ..Default::default()
        };
        let start = Instant::now();
        let full = cb_mck::explore::bfs(&sys, &props, &cfg);
        let t_full = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let chains = cb_mck::consequence::predict(&sys, &props, &cfg);
        let t_chains = start.elapsed().as_secs_f64() * 1e3;
        let ratio = full.states_visited as f64 / chains.report.states_visited.max(1) as f64;
        t.push(vec![
            depth.to_string(),
            format!("{} ({t_full:.1})", full.states_visited),
            format!("{} ({t_chains:.1})", chains.report.states_visited),
            format!("{ratio:.1}x"),
        ]);
    }
    t
}

/// E10 — resolution cost and learned-resolver regret.
pub fn e10(scale: Scale) -> Table {
    use cb_core::choice::{
        ChoiceRequest, ContextKey, NullEvaluator, OptionDesc, Prediction, Resolver,
    };
    use cb_core::objective::ObjectiveSet;
    use cb_core::predict::{ModelEvaluator, PredictConfig};
    use cb_core::resolve::{
        BanditPolicy, CachedResolver, LearnedResolver, LookaheadResolver, RandomResolver,
    };
    use cb_simnet::rng::SimRng;

    let rounds = if scale.full { 10_000 } else { 2_000 };
    let mut t = Table::new(
        "E10",
        "Choice-resolution cost and learned-resolver quality",
        "keep complex choice mechanisms off the critical path; learn from similar scenarios (paper 3.4)",
        &["resolver", "ns/choice", "mean reward (3-arm bandit)"],
    );
    let options: Vec<OptionDesc> = (0..3).map(OptionDesc::key).collect();
    let req = ChoiceRequest::new("bench.arm", &options);
    // Reward model: arm 2 pays 0.9, arm 1 pays 0.5, arm 0 pays 0.1.
    let pay = [0.1, 0.5, 0.9];

    // Cost measurement uses a predictive evaluator for lookahead/cached and
    // the null evaluator otherwise, mirroring real usage.
    let objectives: ObjectiveSet<i64> =
        ObjectiveSet::new().maximize("value", 1.0, |s: &i64| *s as f64);
    let run = |resolver: &mut dyn Resolver, predictive: bool| -> (f64, f64) {
        let mut rng = SimRng::seed_from(42);
        let mut reward_sum = 0.0;
        let start = Instant::now();
        for _ in 0..rounds {
            let pick = if predictive {
                let mut eval = ModelEvaluator::new(
                    |i| DriftSys { bias: i as i64 },
                    &objectives,
                    PredictConfig {
                        depth: 4,
                        walks: 8,
                        ..Default::default()
                    },
                    rng.fork(),
                );
                resolver.resolve(&req, &mut eval)
            } else {
                resolver.resolve(&req, &mut NullEvaluator)
            };
            let r = pay[pick];
            reward_sum += r;
            resolver.feedback("bench.arm", ContextKey::default(), pick as u64, r);
        }
        let ns = start.elapsed().as_nanos() as f64 / rounds as f64;
        (ns, reward_sum / rounds as f64)
    };

    /// A drifting counter whose future value scales with the chosen arm —
    /// the lookahead resolver therefore discovers the best arm by
    /// prediction alone.
    #[derive(Clone)]
    struct DriftSys {
        bias: i64,
    }
    impl cb_mck::system::TransitionSystem for DriftSys {
        type State = i64;
        type Action = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn actions(&self, s: &i64) -> Vec<i64> {
            vec![s + self.bias]
        }
        fn step(&self, _s: &i64, a: &i64) -> i64 {
            *a
        }
    }

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut random = RandomResolver::new(7);
    let (ns, rw) = run(&mut random, false);
    rows.push(("Random".into(), ns, rw));
    for (name, policy) in [
        (
            "Learned ε-greedy",
            BanditPolicy::EpsilonGreedy { epsilon: 0.1 },
        ),
        (
            "Learned UCB1",
            BanditPolicy::Ucb1 {
                c: std::f64::consts::SQRT_2,
            },
        ),
        ("Learned EXP3", BanditPolicy::Exp3 { gamma: 0.1 }),
    ] {
        let mut r = LearnedResolver::new(policy, 7);
        let (ns, rw) = run(&mut r, false);
        rows.push((name.into(), ns, rw));
    }
    let mut lookahead = LookaheadResolver::new();
    let (ns, rw) = run(&mut lookahead, true);
    rows.push(("Lookahead (depth 4)".into(), ns, rw));
    let mut cached = CachedResolver::new(LookaheadResolver::new(), 256);
    let (ns, rw) = run(&mut cached, true);
    rows.push(("Cached lookahead".into(), ns, rw));
    let _ = Prediction::unknown();
    for (name, ns, rw) in rows {
        t.push(vec![name, format!("{ns:.0}"), format!("{rw:.3}")]);
    }
    t
}

/// E11 — graceful degradation under fault storms.
///
/// Runs the randtree fault-storm campaign twice with the same
/// per-decision prediction deadline: once through the degradation-governed
/// resolver ladder (deadline *enforced* at the evaluator) and once through
/// pure lookahead (deadline *reported* only). The ladder arm must keep
/// every decision inside the budget — zero overruns — by stepping down to
/// cheaper rungs when predictions get cut short, and must step back up
/// once evaluations complete again; the control arm shows how often
/// unbounded prediction blows the same budget.
pub fn e11(scale: Scale) -> Table {
    use cb_harness::prelude::{run_campaign, CampaignConfig};
    use cb_randtree::RandTreeCampaign;
    use cb_telemetry::summary::summarize;

    /// The per-decision prediction deadline, in explored states. Chosen
    /// below the storm arm's typical per-decision exploration cost so the
    /// deadline actually bites (the campaign tests pin the same value).
    const DEADLINE_STATES: u64 = 20;

    let mut t = Table::new(
        "E11",
        format!(
            "Graceful degradation under fault storms (deadline {DEADLINE_STATES} states/decision)"
        ),
        "predictions degrade to cheaper strategies instead of blocking decisions (paper 3.3-3.4)",
        &[
            "arm",
            "decisions",
            "partial evals",
            "deadline overruns",
            "step-downs",
            "recoveries",
            "degraded-rung decisions",
            "violations",
        ],
    );
    let cfg = CampaignConfig {
        seeds: if scale.full { 8 } else { 2 },
        check_determinism: false,
        shrink: false,
        artifact_dir: None,
        ..CampaignConfig::default()
    };
    for (label, ladder) in [("Ladder (enforced)", true), ("Lookahead (control)", false)] {
        let scenario = RandTreeCampaign {
            lookahead: !ladder,
            ladder,
            deadline_states: DEADLINE_STATES,
            storm: true,
            ..Default::default()
        };
        let outcome = run_campaign(&scenario, &cfg);
        let s = summarize(&outcome.telemetry);
        let tl = &outcome.telemetry;
        let degraded = tl.counter(cb_telemetry::keys::CORE_LADDER_RUNG_CACHED)
            + tl.counter(cb_telemetry::keys::CORE_LADDER_RUNG_HEURISTIC)
            + tl.counter(cb_telemetry::keys::CORE_LADDER_RUNG_STATIC);
        t.push(vec![
            label.to_string(),
            s.decisions.to_string(),
            tl.counter(cb_telemetry::keys::CORE_PREDICT_PARTIAL_EVALS)
                .to_string(),
            tl.counter(cb_telemetry::keys::CORE_PREDICT_DEADLINE_OVERRUNS)
                .to_string(),
            tl.counter(cb_telemetry::keys::CORE_GOVERNOR_STEP_DOWNS)
                .to_string(),
            tl.counter(cb_telemetry::keys::CORE_GOVERNOR_RECOVERIES)
                .to_string(),
            degraded.to_string(),
            outcome.failures.len().to_string(),
        ]);
    }
    t
}

/// E12 — reading a kv linearizability campaign.
///
/// Three sweeps read together: the kv and mencius storm arms must hold
/// the per-key WGL linearizability oracle across every seed of
/// crash/restart churn, loss windows, partitions, and gray-failure
/// stalls, while the `--unsafe-reads` planted bug (reads served from the
/// chosen replica's local store without a guard round) must be *caught*
/// by the same oracle on most seeds — the choice `kv.read_replica` is
/// only safe to expose because the checker is strong enough to see the
/// failure mode it enables.
pub fn e12(scale: Scale) -> Table {
    use cb_harness::prelude::{run_campaign, CampaignConfig, Scenario};

    let mut t = Table::new(
        "E12",
        "Reading a kv linearizability campaign",
        "exposed read-placement choices are only safe under an oracle that catches stale reads (paper 3.1)",
        &[
            "arm",
            "seeds",
            "passed",
            "failed",
            "linearizability violations",
            "events",
        ],
    );
    let cfg = CampaignConfig {
        seeds: if scale.full { 32 } else { 2 },
        check_determinism: false,
        shrink: false,
        artifact_dir: None,
        ..CampaignConfig::default()
    };
    let arms: Vec<(&str, Box<dyn Scenario>)> = vec![
        (
            "kv storm",
            Box::new(cb_kv::KvCampaign {
                storm: true,
                ..Default::default()
            }),
        ),
        (
            "mencius storm",
            Box::new(cb_paxos::MenciusCampaign {
                storm: true,
                ..Default::default()
            }),
        ),
        (
            "kv unsafe-reads (planted bug)",
            Box::new(cb_kv::KvCampaign {
                unsafe_reads: true,
                ..Default::default()
            }),
        ),
    ];
    for (label, scenario) in arms {
        let outcome = run_campaign(scenario.as_ref(), &cfg);
        let caught = outcome
            .failures
            .iter()
            .filter(|f| {
                f.report
                    .failing_oracles()
                    .iter()
                    .any(|o| o.contains("linearizable"))
            })
            .count();
        t.push(vec![
            label.to_string(),
            cfg.seeds.to_string(),
            outcome.passed.to_string(),
            outcome.failures.len().to_string(),
            caught.to_string(),
            outcome.total_events.to_string(),
        ]);
    }
    t
}

/// E13 — overload survival: admission + bounded retries vs metastable
/// collapse.
///
/// Both arms run the same seeds, fault plans, and 6× flash crowd; the
/// only difference is `flash-off` disabling the `kv.admission` choice
/// and lifting the retry budget. The protected arm must shed load, step
/// the governor down, and recover on every seed; the unprotected arm
/// enters the self-sustaining retry regime the `workload.metastable`
/// oracle detects.
pub fn e13(scale: Scale) -> Table {
    use cb_harness::prelude::{run_campaign, CampaignConfig};
    use cb_telemetry::keys;
    use cb_workload::WorkloadProfile;

    let mut t = Table::new(
        "E13",
        "Overload survival: admission + bounded retries vs metastable collapse",
        "degradation machinery composes with service-level overload protection (paper 3.3)",
        &[
            "arm",
            "passed",
            "failed",
            "metastable seeds",
            "offered",
            "served",
            "shed",
            "retries",
            "expired",
            "step-downs",
            "recoveries",
        ],
    );
    let cfg = CampaignConfig {
        seeds: if scale.full { 32 } else { 2 },
        check_determinism: false,
        shrink: false,
        artifact_dir: None,
        ..CampaignConfig::default()
    };
    for (label, profile) in [
        ("flash (protected)", WorkloadProfile::flash()),
        ("flash-off (defenses removed)", WorkloadProfile::flash_off()),
    ] {
        let scenario = cb_kv::KvCampaign {
            workload: Some(profile),
            ..Default::default()
        };
        let outcome = run_campaign(&scenario, &cfg);
        let metastable = outcome
            .failures
            .iter()
            .filter(|f| {
                f.report
                    .failing_oracles()
                    .iter()
                    .any(|o| o.contains("metastable"))
            })
            .count();
        let tl = &outcome.telemetry;
        t.push(vec![
            label.to_string(),
            outcome.passed.to_string(),
            outcome.failures.len().to_string(),
            metastable.to_string(),
            tl.counter(keys::WORKLOAD_OFFERED).to_string(),
            tl.counter(keys::WORKLOAD_SERVED).to_string(),
            tl.counter(keys::WORKLOAD_SHED).to_string(),
            tl.counter(keys::WORKLOAD_RETRIES).to_string(),
            tl.counter(keys::WORKLOAD_EXPIRED).to_string(),
            tl.counter(keys::CORE_GOVERNOR_STEP_DOWNS).to_string(),
            tl.counter(keys::CORE_GOVERNOR_RECOVERIES).to_string(),
        ]);
    }
    t
}

/// A1 — ablation: lookahead depth vs rejoin tree quality.
pub fn a1(scale: Scale) -> Table {
    use cb_core::predict::PredictConfig;
    let nodes = 31;
    let mut t = Table::new(
        "A1",
        format!("Ablation: lookahead depth vs rejoin depth ({nodes} nodes)"),
        "design choice called out in DESIGN.md: prediction depth vs decision quality vs cost",
        &[
            "lookahead depth",
            "mean max depth",
            "worst",
            "wall secs/run",
        ],
    );
    for depth in [1usize, 2, 4, 8] {
        let mut depths = Vec::new();
        let mut wall = 0.0;
        for seed in 1..=scale.seeds {
            let cfg = ScenarioConfig {
                nodes,
                seed,
                predict: Some(PredictConfig {
                    depth,
                    walks: 16,
                    ..Default::default()
                }),
                ..Default::default()
            };
            let start = Instant::now();
            let out = run_failure_rejoin(&cfg, Setup::ChoiceCrystalBall);
            wall += start.elapsed().as_secs_f64();
            depths.push(out.after_rejoin.expect("rejoin stats").max_depth as f64);
        }
        let k = scale.seeds as f64;
        t.push(vec![
            depth.to_string(),
            fmt_f(depths.iter().sum::<f64>() / k),
            fmt_f(depths.iter().cloned().fold(0.0, f64::max)),
            fmt_f(wall / k),
        ]);
    }
    t
}

/// A2 — ablation: controller cadence vs steering effectiveness.
pub fn a2(scale: Scale) -> Table {
    use crate::steeringlab::run_lab;
    let nodes = if scale.full { 16 } else { 12 };
    let hop = SimDuration::from_millis(400);
    let mut t = Table::new(
        "A2",
        format!(
            "Ablation: prediction freshness vs conflicts prevented ({nodes}-node racing waves)"
        ),
        "steering works only when the model/prediction loop runs ahead of the system (paper 3.3.2)",
        &["controller cadence", "conflicts", "messages filtered"],
    );
    let cadences: &[(&str, Option<u64>)] = &[
        ("no steering", None),
        ("50 ms", Some(50)),
        ("200 ms", Some(200)),
        ("800 ms", Some(800)),
        ("3200 ms", Some(3200)),
    ];
    for &(label, ms) in cadences {
        let mut conflicts = 0u32;
        let mut filtered = 0u64;
        for seed in 1..=scale.seeds {
            let out = run_lab(nodes, hop, ms.map(SimDuration::from_millis), seed);
            conflicts += out.conflicts;
            filtered += out.filtered;
        }
        t.push(vec![
            label.to_string(),
            format!("{:.1}", conflicts as f64 / scale.seeds as f64),
            format!("{:.1}", filtered as f64 / scale.seeds as f64),
        ]);
    }
    t
}

/// T1 — per-scenario critical-path telemetry digest.
///
/// Sweeps every registered campaign scenario and summarizes the merged
/// telemetry registries: decision-latency quantiles on the deterministic
/// sim-cost clock, cache hit rate, and exploration cost per decision —
/// the numbers behind the paper's "keep complex choice resolution off the
/// critical path" claim (§3.4).
pub fn t1(scale: Scale) -> Table {
    use cb_harness::prelude::{run_campaign, CampaignConfig};
    use cb_telemetry::summary::{fmt_rate, summarize};

    let mut t = Table::new(
        "T1",
        "Campaign telemetry: decision cost stays off the critical path",
        "choice resolution must be cheap on the hot path; prediction cost is budgeted (paper 3.4)",
        &[
            "scenario",
            "decisions",
            "p50 sim us",
            "p99 sim us",
            "cache hit",
            "states/decision",
            "msgs delivered",
        ],
    );
    let cfg = CampaignConfig {
        seeds: if scale.full { 8 } else { 2 },
        check_determinism: false,
        shrink: false,
        artifact_dir: None,
        ..CampaignConfig::default()
    };
    for scenario in crate::registry::all_scenarios() {
        let outcome = run_campaign(scenario.as_ref(), &cfg);
        let s = summarize(&outcome.telemetry);
        t.push(vec![
            scenario.name().to_string(),
            s.decisions.to_string(),
            s.decision_p50_sim_us.to_string(),
            s.decision_p99_sim_us.to_string(),
            fmt_rate(s.cache_hit_rate),
            format!("{:.2}", s.states_per_decision),
            outcome
                .telemetry
                .counter(cb_telemetry::keys::NET_MSGS_DELIVERED)
                .to_string(),
        ]);
    }
    t
}

/// Runs every experiment at the given scale, in id order.
pub fn all(scale: Scale) -> Vec<Table> {
    vec![
        e1(scale),
        e2(scale),
        e3(scale),
        e4(scale),
        e5(scale),
        e6(scale),
        e7(scale),
        e8(scale),
        e10(scale),
        e11(scale),
        e12(scale),
        e13(scale),
        a1(scale),
        a2(scale),
        t1(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_runs_and_shows_reduction() {
        let t = e1(Scale::quick());
        assert_eq!(t.rows.len(), 3);
        assert!(
            t.rows[2][2].ends_with('%'),
            "reduction cell: {:?}",
            t.rows[2]
        );
    }

    #[test]
    fn e8_shows_pruning() {
        let t = e8(Scale::quick());
        assert_eq!(t.rows.len(), 6);
        // At depth 6 the pruning factor must exceed 2x.
        let pruning: f64 = t.rows[5][3].trim_end_matches('x').parse().expect("ratio");
        assert!(pruning > 2.0, "pruning only {pruning}x");
    }

    #[test]
    fn t1_covers_all_registered_scenarios() {
        let t = t1(Scale::quick());
        let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(names, crate::registry::scenario_names());
        // Runtime-backed scenarios expose choices; the toy ring does not.
        let decisions = |row: usize| -> u64 { t.rows[row][1].parse().expect("decisions") };
        assert!(decisions(0) > 0, "randtree made no decisions");
        assert_eq!(decisions(4), 0, "toy ring has no choice points");
        // Every scenario moved messages, and the quantile cells parse.
        for row in &t.rows {
            assert!(row[6].parse::<u64>().expect("msgs") > 0, "{row:?}");
            assert!(row[3].parse::<u64>().expect("p99") >= row[2].parse::<u64>().expect("p50"));
        }
    }

    #[test]
    fn e11_ladder_holds_the_deadline_while_the_control_arm_overruns() {
        let t = e11(Scale::quick());
        assert_eq!(t.rows.len(), 2);
        let cell = |row: usize, col: usize| -> u64 { t.rows[row][col].parse().expect("count") };
        // Ladder arm: deadline fired (partial evals), never overran, and
        // the governor both stepped down and recovered; no violations.
        assert!(cell(0, 2) > 0, "ladder arm never hit the deadline");
        assert_eq!(cell(0, 3), 0, "enforced deadline overran");
        assert!(cell(0, 4) > 0, "no step-down");
        assert!(cell(0, 5) > 0, "no recovery");
        assert!(cell(0, 6) > 0, "never used a degraded rung");
        assert_eq!(cell(0, 7), 0, "ladder arm violated an oracle");
        // Control arm: same storm, unbounded prediction overruns the
        // budget it was only asked to report.
        assert!(cell(1, 3) > 0, "control arm never overran");
        assert_eq!(cell(1, 7), 0, "control arm violated an oracle");
    }

    #[test]
    fn e10_learned_beats_random() {
        let t = e10(Scale::quick());
        let reward = |row: usize| -> f64 { t.rows[row][2].parse().expect("reward") };
        let random = reward(0);
        let ucb = reward(2);
        assert!(ucb > random + 0.2, "UCB {ucb} vs random {random}");
    }
}
