//! The steering laboratory (ablation A2).
//!
//! A deliberately inconsistent protocol — two adoption waves carrying
//! different values crawl toward each other — run with and without the
//! predicted-violation steering advisor, across controller cadences. The
//! point quantified here is §3.3.2's freshness requirement: steering only
//! works when the model/prediction loop runs *ahead* of the system, so
//! conflicts prevented degrade as the controller slows relative to the
//! wave's hop delay.

use cb_core::model::state::{NodeView, StateModel};
use cb_core::prelude::*;
use cb_simnet::time::{SimDuration, SimTime};

/// The racing-waves protocol message.
#[derive(Clone, Debug)]
pub struct SetValue(pub u32);

const FORWARD_TIMER: u64 = 1;

/// The adopt-first register node.
pub struct Register {
    me: NodeId,
    n: usize,
    hop_delay: SimDuration,
    /// Adopted value, if any.
    pub value: Option<u32>,
    /// Conflicting deliveries observed (the inconsistency to prevent).
    pub conflicts_seen: u32,
}

impl Register {
    fn adopt(&mut self, ctx: &mut ServiceCtx<'_, '_, SetValue, Option<u32>>, v: u32) {
        self.value = Some(v);
        ctx.set_timer(self.hop_delay, FORWARD_TIMER);
    }
}

impl Service for Register {
    type Msg = SetValue;
    type Checkpoint = Option<u32>;

    fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, SetValue, Option<u32>>) {
        let n = ctx.host_count() as u32;
        match self.me {
            NodeId(0) => self.adopt(ctx, 1),
            m if m.0 == n - 1 => self.adopt(ctx, 2),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_, '_, SetValue, Option<u32>>, tag: u64) {
        if tag != FORWARD_TIMER {
            return;
        }
        let n = ctx.host_count() as u32;
        // Value 1 flows toward higher ids, value 2 toward lower ids.
        let target = match self.value {
            Some(1) if self.me.0 + 1 < n => Some(NodeId(self.me.0 + 1)),
            Some(2) if self.me.0 > 0 => Some(NodeId(self.me.0 - 1)),
            _ => None,
        };
        if let (Some(t), Some(v)) = (target, self.value) {
            ctx.send(t, SetValue(v));
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, SetValue, Option<u32>>,
        _from: NodeId,
        msg: SetValue,
    ) {
        match self.value {
            None => self.adopt(ctx, msg.0),
            Some(v) if v != msg.0 => self.conflicts_seen += 1,
            Some(_) => {}
        }
    }

    fn checkpoint(&self, _m: &StateModel<Option<u32>>) -> Option<u32> {
        self.value
    }

    fn neighbors(&self) -> Vec<NodeId> {
        (0..self.n as u32)
            .map(NodeId)
            .filter(|&n| n != self.me)
            .collect()
    }
}

/// One steering-lab run.
#[derive(Clone, Debug)]
pub struct LabOutcome {
    /// Conflicting deliveries observed across all nodes.
    pub conflicts: u32,
    /// Messages the steering filters dropped.
    pub filtered: u64,
}

/// Runs the racing waves over `nodes` nodes.
///
/// `controller_interval = None` disables the advisor entirely (the
/// unprotected baseline).
pub fn run_lab(
    nodes: usize,
    hop_delay: SimDuration,
    controller_interval: Option<SimDuration>,
    seed: u64,
) -> LabOutcome {
    let topo = Topology::star(nodes, SimDuration::from_millis(10), 10_000_000);
    let mut sim = Sim::new(topo, seed, move |id| {
        let mut config: RuntimeConfig<Option<u32>> =
            RuntimeConfig::new(Box::new(RandomResolver::new(1)));
        match controller_interval {
            None => {
                config = config.controller_every(SimDuration::from_millis(100));
            }
            Some(interval) => {
                let advisor: SteeringAdvisor<Option<u32>> = Box::new(|input| {
                    let Some(mine) = input.my_state else {
                        return Vec::new();
                    };
                    input
                        .model
                        .known()
                        .filter_map(|peer| match input.model.view(peer) {
                            NodeView::Known(s) => match s.state {
                                Some(theirs) if theirs != mine => Some(SteeringAdvice {
                                    reason: format!("predicted conflict {mine} vs {theirs}"),
                                    from: peer,
                                    action: FilterAction::DropAndBreak,
                                }),
                                _ => None,
                            },
                            NodeView::Generic => None,
                        })
                        .collect()
                });
                config = config.controller_every(interval).with_advisor(advisor);
            }
        }
        RuntimeNode::new(
            Register {
                me: id,
                n: nodes,
                hop_delay,
                value: None,
                conflicts_seen: 0,
            },
            config,
        )
    });
    sim.start_all();
    sim.run_until_quiescent(SimTime::from_secs(60));
    let conflicts = sim
        .topology()
        .hosts()
        .map(|n| sim.actor(n).service().conflicts_seen)
        .sum();
    let filtered = sim
        .topology()
        .hosts()
        .map(|n| sim.actor(n).steering_stats().0)
        .sum();
    LabOutcome {
        conflicts,
        filtered,
    }
}

/// Campaign wrapper around the steering lab: the racing waves with the
/// advisor enabled, run under the campaign runner so the full steering
/// filter lifecycle (`core.steering.installed/fired/expired/removed`)
/// flows into the merged campaign telemetry and failure artifacts.
pub struct SteeringLabCampaign {
    /// Participants in the racing waves.
    pub nodes: usize,
    /// Wave hop delay.
    pub hop_delay: SimDuration,
    /// Controller cadence for the advisor.
    pub cadence: SimDuration,
}

impl Default for SteeringLabCampaign {
    fn default() -> Self {
        SteeringLabCampaign {
            nodes: 12,
            hop_delay: SimDuration::from_millis(400),
            cadence: SimDuration::from_millis(50),
        }
    }
}

impl cb_harness::scenario::Scenario for SteeringLabCampaign {
    fn name(&self) -> &'static str {
        "steeringlab"
    }

    fn node_count(&self) -> usize {
        self.nodes
    }

    fn default_plan(&self, _seed: u64) -> cb_harness::plan::FaultPlan {
        // The lab's adversary is its own racing waves; no injected faults.
        cb_harness::plan::FaultPlan::none()
    }

    fn run(
        &self,
        seed: u64,
        plan: &cb_harness::plan::FaultPlan,
    ) -> cb_harness::scenario::RunReport {
        use cb_core::runtime::fleet_telemetry;
        use cb_harness::oracle::OracleVerdict;

        let nodes = self.nodes;
        let hop_delay = self.hop_delay;
        let cadence = self.cadence;
        let topo = Topology::star(nodes, SimDuration::from_millis(10), 10_000_000);
        let mut sim = Sim::new(topo, seed, move |id| {
            let advisor: SteeringAdvisor<Option<u32>> = Box::new(|input| {
                let Some(mine) = input.my_state else {
                    return Vec::new();
                };
                input
                    .model
                    .known()
                    .filter_map(|peer| match input.model.view(peer) {
                        NodeView::Known(s) => match s.state {
                            Some(theirs) if theirs != mine => Some(SteeringAdvice {
                                reason: format!("predicted conflict {mine} vs {theirs}"),
                                from: peer,
                                action: FilterAction::DropAndBreak,
                            }),
                            _ => None,
                        },
                        NodeView::Generic => None,
                    })
                    .collect()
            });
            RuntimeNode::new(
                Register {
                    me: id,
                    n: nodes,
                    hop_delay,
                    value: None,
                    conflicts_seen: 0,
                },
                RuntimeConfig::new(Box::new(RandomResolver::new(1)))
                    .controller_every(cadence)
                    .with_advisor(advisor),
            )
        });
        sim.start_all();
        let horizon = SimTime::from_secs(60);
        plan.drive(&mut sim, seed ^ 0x57ee_7113, horizon);
        let filtered: u64 = sim
            .topology()
            .hosts()
            .map(|n| sim.actor(n).steering_stats().0)
            .sum();
        let verdicts = vec![OracleVerdict::check(
            "steering.engaged",
            filtered > 0,
            format!("{filtered} messages filtered"),
        )];
        cb_harness::scenario::RunReport::from_sim_quiescence(
            self.name(),
            seed,
            plan,
            &sim,
            horizon,
            verdicts,
            false,
        )
        .with_telemetry(fleet_telemetry(&sim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_waves_conflict() {
        let out = run_lab(12, SimDuration::from_millis(400), None, 3);
        assert!(out.conflicts > 0, "waves never met: {out:?}");
        assert_eq!(out.filtered, 0);
    }

    #[test]
    fn fast_controller_prevents_conflicts() {
        let base = run_lab(12, SimDuration::from_millis(400), None, 3);
        let steered = run_lab(
            12,
            SimDuration::from_millis(400),
            Some(SimDuration::from_millis(50)),
            3,
        );
        assert!(
            steered.conflicts < base.conflicts,
            "steering did not help: {steered:?} vs {base:?}"
        );
        assert!(steered.filtered > 0);
    }

    #[test]
    fn campaign_telemetry_carries_the_filter_lifecycle() {
        use cb_harness::prelude::{run_campaign, CampaignConfig};
        use cb_telemetry::keys;

        let scenario = SteeringLabCampaign::default();
        let cfg = CampaignConfig {
            seeds: 2,
            check_determinism: true,
            shrink: false,
            artifact_dir: None,
            ..CampaignConfig::default()
        };
        let outcome = run_campaign(&scenario, &cfg);
        assert!(outcome.all_passed(), "steering lab campaign failed");
        let t = &outcome.telemetry;
        let installed = t.counter(keys::CORE_STEERING_INSTALLED);
        let fired = t.counter(keys::CORE_STEERING_FIRED);
        let expired = t.counter(keys::CORE_STEERING_EXPIRED);
        let removed = t.counter(keys::CORE_STEERING_REMOVED);
        assert!(installed > 0, "no filters installed");
        assert!(fired > 0, "no filter ever fired");
        // Lifecycle conservation: every filter that left did so by budget
        // exhaustion or explicit removal, and never more left than entered.
        assert!(
            expired + removed <= installed,
            "more filters left ({expired} expired + {removed} removed) than installed ({installed})"
        );
        // The legacy drop counter and the lifecycle fired counter describe
        // the same events from two vantage points.
        assert_eq!(fired, t.counter(keys::CORE_STEERING_DROPPED));
    }

    #[test]
    fn slow_controller_is_less_effective() {
        let fast = run_lab(
            12,
            SimDuration::from_millis(400),
            Some(SimDuration::from_millis(50)),
            3,
        );
        let slow = run_lab(
            12,
            SimDuration::from_millis(400),
            Some(SimDuration::from_secs(5)),
            3,
        );
        assert!(
            fast.conflicts <= slow.conflicts,
            "freshness inversion: fast {fast:?} vs slow {slow:?}"
        );
    }
}
