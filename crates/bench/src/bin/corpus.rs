//! Query and diff the campaign corpus. Usage:
//!
//! ```text
//! corpus ingest CORPUS_DIR SRC_DIR [SRC_DIR ...]
//! corpus query CORPUS_DIR PREDICATE [--json]
//! corpus top-blame CORPUS_DIR [--min-seeds N] [--json]
//! corpus diff BASELINE_DIR CANDIDATE_DIR [--out FILE] [--json]
//!             [--rel FRAC] [--abs-floor N] [--hist-divergence FRAC]
//!             [--hist-min-count N] [--pass-rate-drop FRAC]
//! ```
//!
//! `ingest` folds campaign failure artifacts (`cb-campaign-failure/v1`)
//! and corpus record objects (`cb-corpus-record/v1`) from each source
//! directory into the corpus at `CORPUS_DIR`, creating or extending it in
//! place. Ingestion is idempotent and order-invariant: the saved
//! `index.cbc` bytes depend only on the record set. (Campaign sweeps can
//! also ingest directly via `campaign --corpus DIR` — that path captures
//! passing seeds too.)
//!
//! `query` evaluates a predicate over every record, e.g.
//!
//! ```text
//! corpus query results/corpus \
//!   'scenario=kv & hist_count(core.governor.in_survival_sim_ns) >= 2'
//! corpus query results/corpus 'failed & blame(decide:kv.read_replica)'
//! ```
//!
//! and prints matching seeds in deterministic corpus order. Exit 0 when
//! at least one record matches, 1 when none do.
//!
//! `top-blame` ranks the provenance blame targets shared by violating
//! seeds (default `--min-seeds 3`, the roadmap's canonical cross-seed
//! triage question). Feed any listed seed's failure artifact to
//! `trace blame` for the full causal chain. Exit 0 when any target
//! qualifies, 1 otherwise.
//!
//! `diff` compares two corpora and reports counter-mean movements past
//! the noise thresholds, histogram-distribution divergence, pass-rate
//! drops, newly failing oracles, and coverage drift. `--out` writes the
//! `cb-corpus-diff/v1` report JSON. Exit 0 when nothing is flagged,
//! 1 when anything is — the CI regression gate.
//!
//! Exit status 2 on usage or I/O errors.

use cb_corpus::{diff, parse_predicate, select, top_blame, Corpus, DiffConfig, DIFF_SCHEMA};
use cb_harness::json::Json;
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: corpus ingest CORPUS_DIR SRC_DIR [SRC_DIR ...]\n\
         \x20      corpus query CORPUS_DIR PREDICATE [--json]\n\
         \x20      corpus top-blame CORPUS_DIR [--min-seeds N] [--json]\n\
         \x20      corpus diff BASELINE_DIR CANDIDATE_DIR [--out FILE] [--json]\n\
         \x20             [--rel FRAC] [--abs-floor N] [--hist-divergence FRAC]\n\
         \x20             [--hist-min-count N] [--pass-rate-drop FRAC]"
    );
    std::process::exit(2);
}

fn load_corpus(dir: &Path) -> Corpus {
    Corpus::load(dir).unwrap_or_else(|e| {
        eprintln!("{}: {e}", dir.display());
        std::process::exit(2);
    })
}

fn cmd_ingest(args: &[String]) -> i32 {
    if args.len() < 2 {
        usage();
    }
    let corpus_dir = PathBuf::from(&args[0]);
    let mut corpus = if corpus_dir.join(cb_corpus::INDEX_FILE).exists() {
        load_corpus(&corpus_dir)
    } else {
        Corpus::new()
    };
    for src in &args[1..] {
        let fresh = corpus.ingest_dir(Path::new(src)).unwrap_or_else(|e| {
            eprintln!("{src}: {e}");
            std::process::exit(2);
        });
        println!("{src}: {fresh} new record(s)");
    }
    if let Err(e) = corpus.save(&corpus_dir) {
        eprintln!("{}: {e}", corpus_dir.display());
        std::process::exit(2);
    }
    println!(
        "corpus: {} record(s) -> {}",
        corpus.len(),
        corpus_dir.display()
    );
    0
}

fn cmd_query(args: &[String]) -> i32 {
    let mut json_out = false;
    let pos: Vec<&String> = args
        .iter()
        .filter(|a| {
            if a.as_str() == "--json" {
                json_out = true;
                false
            } else {
                true
            }
        })
        .collect();
    let [dir, predicate] = pos.as_slice() else {
        usage();
    };
    let corpus = load_corpus(Path::new(dir));
    let pred = parse_predicate(predicate).unwrap_or_else(|e| {
        eprintln!("bad predicate: {e}");
        std::process::exit(2);
    });
    let hits = select(&corpus, &pred);
    if json_out {
        let rows: Vec<Json> = hits.iter().map(|r| r.to_json()).collect();
        println!("{}", Json::Arr(rows).to_string_pretty());
    } else {
        for r in &hits {
            println!(
                "{} seed {} {} fingerprint {:#018x}{}",
                r.scenario,
                r.seed,
                if r.passed { "PASS" } else { "FAIL" },
                r.fingerprint,
                if r.blame.is_empty() {
                    String::new()
                } else {
                    format!(" blame {}", r.blame.join(","))
                }
            );
        }
        println!("{} of {} record(s) match", hits.len(), corpus.len());
    }
    i32::from(hits.is_empty())
}

fn cmd_top_blame(args: &[String]) -> i32 {
    let mut json_out = false;
    let mut min_seeds = 3usize;
    let mut dir: Option<&String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json_out = true,
            "--min-seeds" => {
                i += 1;
                min_seeds = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--min-seeds wants a number");
                    usage();
                });
            }
            _ if dir.is_none() => dir = Some(&args[i]),
            _ => usage(),
        }
        i += 1;
    }
    let Some(dir) = dir else { usage() };
    let corpus = load_corpus(Path::new(dir));
    let tallies = top_blame(&corpus, min_seeds);
    if json_out {
        let rows: Vec<Json> = tallies
            .iter()
            .map(|t| {
                Json::obj()
                    .with("target", t.target.as_str())
                    .with("seeds", t.seeds.len())
                    .with(
                        "violating",
                        Json::Arr(
                            t.seeds
                                .iter()
                                .map(|(s, seed)| {
                                    Json::obj()
                                        .with("scenario", s.as_str())
                                        .with("seed", seed.to_string())
                                })
                                .collect(),
                        ),
                    )
            })
            .collect();
        println!("{}", Json::Arr(rows).to_string_pretty());
    } else {
        for t in &tallies {
            let seeds: Vec<String> = t
                .seeds
                .iter()
                .map(|(s, seed)| format!("{s}/{seed}"))
                .collect();
            println!(
                "{:<32} {:>3} seed(s)  {}",
                t.target,
                t.seeds.len(),
                seeds.join(" ")
            );
        }
        println!(
            "{} blame target(s) shared by >= {} violating seed(s)",
            tallies.len(),
            min_seeds
        );
        if !tallies.is_empty() {
            println!("next: `trace blame <artifact>` on any listed seed's failure artifact");
        }
    }
    i32::from(tallies.is_empty())
}

fn cmd_diff(args: &[String]) -> i32 {
    let mut cfg = DiffConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut json_out = false;
    let mut pos: Vec<&String> = Vec::new();
    let mut i = 0;
    let need = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| {
                eprintln!("{flag} needs an argument");
                usage();
            })
            .clone()
    };
    let parse_f64 = |s: String, flag: &str| -> f64 {
        s.parse().unwrap_or_else(|_| {
            eprintln!("{flag} wants a number");
            usage();
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json_out = true,
            "--out" => out = Some(PathBuf::from(need(args, &mut i, "--out"))),
            "--rel" => cfg.rel_threshold = parse_f64(need(args, &mut i, "--rel"), "--rel"),
            "--abs-floor" => {
                cfg.abs_floor = parse_f64(need(args, &mut i, "--abs-floor"), "--abs-floor")
            }
            "--hist-divergence" => {
                cfg.hist_divergence =
                    parse_f64(need(args, &mut i, "--hist-divergence"), "--hist-divergence")
            }
            "--hist-min-count" => {
                cfg.hist_min_count = need(args, &mut i, "--hist-min-count")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--hist-min-count wants a number");
                        usage();
                    })
            }
            "--pass-rate-drop" => {
                cfg.pass_rate_drop =
                    parse_f64(need(args, &mut i, "--pass-rate-drop"), "--pass-rate-drop")
            }
            _ => pos.push(&args[i]),
        }
        i += 1;
    }
    let [baseline_dir, candidate_dir] = pos.as_slice() else {
        usage();
    };
    let baseline = load_corpus(Path::new(baseline_dir));
    let candidate = load_corpus(Path::new(candidate_dir));
    let report = diff(&baseline, &candidate, &cfg);
    let json = report.to_json();
    // The diff report rides the shared bench-artifact contract (schema +
    // rows + summary); validate before anything consumes it.
    if report.regressed() {
        if let Err(e) =
            cb_bench::benchjson::validate_schema_and_rows(&json, DIFF_SCHEMA, "findings")
        {
            eprintln!("internal error: diff report violates its own schema: {e}");
            return 2;
        }
    }
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, json.to_string_pretty() + "\n") {
            eprintln!("{}: {e}", path.display());
            return 2;
        }
        println!("wrote {}", path.display());
    }
    if json_out {
        println!("{}", json.to_string_pretty());
    } else {
        println!(
            "baseline {} record(s), candidate {} record(s)",
            report.baseline_seeds, report.candidate_seeds
        );
        for f in &report.findings {
            println!(
                "{:<18} {:<10} {:<36} {} -> {}  ({})",
                f.kind, f.scenario, f.key, f.baseline, f.candidate, f.detail
            );
        }
        if report.regressed() {
            println!("{} regression finding(s)", report.findings.len());
        } else {
            println!("no regressions flagged");
        }
    }
    i32::from(report.regressed())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let code = match cmd.as_str() {
        "ingest" => cmd_ingest(rest),
        "query" => cmd_query(rest),
        "top-blame" => cmd_top_blame(rest),
        "diff" => cmd_diff(rest),
        _ => usage(),
    };
    std::process::exit(code);
}
