//! Micro-benchmark guard for the WGL linearizability checker.
//!
//! ```text
//! lincheck [--ops N] [--histories N] [--base-seed S] [--ceiling-ms MS]
//! ```
//!
//! The campaign oracles run `check_history` inside every kv/mencius run,
//! so a performance regression in the checker silently multiplies sweep
//! wall time. This guard pins the cost: it generates `--histories`
//! synthetic single-key histories of `--ops` operations each (single key
//! is the worst case — every op contends in one WGL search), checks them
//! all, and **exits nonzero** if the total exceeds `--ceiling-ms` of wall
//! time. Two correctness tripwires ride along so a vacuous checker cannot
//! pass the guard:
//!
//! - every linearizable-by-construction history must check `Ok`, and
//! - each history re-checked with one completed read's value tampered
//!   must be rejected.
//!
//! Exit status: 0 = all green under the ceiling, 1 = ceiling breached or
//! a tripwire fired, 2 = usage error.

use cb_harness::linearizability::{check_history, synthetic_history, OpKind};
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: lincheck [--ops N] [--histories N] [--base-seed S] [--ceiling-ms MS]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ops: usize = 1000;
    let mut histories: u64 = 8;
    let mut base_seed: u64 = 1;
    let mut ceiling_ms: u128 = 5000;
    let mut i = 0;
    let need = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| {
                eprintln!("{flag} needs an argument");
                usage();
            })
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                ops = need(&args, &mut i, "--ops")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--histories" => {
                histories = need(&args, &mut i, "--histories")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--base-seed" => {
                base_seed = need(&args, &mut i, "--base-seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--ceiling-ms" => {
                ceiling_ms = need(&args, &mut i, "--ceiling-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    let mut failed = false;
    let start = Instant::now();
    for h in 0..histories {
        let seed = base_seed.wrapping_add(h);
        let history = synthetic_history(ops, 8, 1, seed);

        // Tripwire 1: a valid history must pass.
        let t0 = Instant::now();
        if let Err(v) = check_history(&history) {
            println!(
                "seed {seed}: FALSE POSITIVE on a valid history: {}",
                v.detail()
            );
            failed = true;
        }
        let check_ms = t0.elapsed().as_millis();

        // Tripwire 2: tamper one completed read — the checker must object.
        // Runs on a shorter history: refuting a violating history means
        // exhausting the search space, which is deliberately NOT what this
        // guard times (campaigns pay the passing-history cost every run;
        // the refutation cost only on failures).
        let mut tampered = synthetic_history(ops.min(200), 8, 1, seed);
        if let Some(op) = tampered
            .iter_mut()
            .rev()
            .find(|o| o.respond_ns.is_some() && matches!(o.kind, OpKind::Read(_)))
        {
            if let OpKind::Read(v) = op.kind {
                op.kind = OpKind::Read(v.wrapping_add(0xBAD));
            }
            if check_history(&tampered).is_ok() {
                println!("seed {seed}: MISSED VIOLATION on a tampered read");
                failed = true;
            }
        } else {
            println!("seed {seed}: history has no completed read to tamper");
            failed = true;
        }

        println!("seed {seed}: {ops} ops checked in {check_ms}ms");
    }
    let total_ms = start.elapsed().as_millis();
    println!("{histories} histories x {ops} ops: {total_ms}ms total (ceiling {ceiling_ms}ms)");
    if total_ms > ceiling_ms {
        println!("CEILING BREACHED: the WGL checker has regressed");
        failed = true;
    }
    std::process::exit(if failed { 1 } else { 0 });
}
