//! The decision hot-path benchmark. Usage:
//!
//! ```text
//! decisions [--quick] [--out PATH]
//! ```
//!
//! Resolves a stream of predictive decisions for every registered scenario
//! (randtree/gossip/paxos/dissem/ring) through the pre-fusion three-pass
//! evaluator (baseline) and the fused single-pass + EvalCache pipeline
//! (optimized), then writes the before/after record to `PATH` (default:
//! `BENCH_decision.json` at the current directory). All reported costs are
//! deterministic sim-costs — states explored per resolved decision at the
//! runtime's 1 µs/state rate — so the artifact is byte-stable across
//! machines. `--quick` shrinks the decision stream for CI smoke runs.
//!
//! Exit status: 0 when at least 3 of the 5 scenarios show a ≥ 2× reduction
//! (the bench's regression bar), 1 otherwise.

use cb_bench::decisions::{run_all, to_json, ScenarioBench};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_decision.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: decisions [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let decisions = if quick { 2 } else { 8 };
    let benches = run_all(decisions);
    println!("decision hot path: states explored per resolved decision (sim-cost, 1 us/state)");
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>10}",
        "scenario", "baseline", "optimized", "speedup", "agreement"
    );
    let mut at_2x = 0;
    for b in &benches {
        let base = ScenarioBench::states_per_decision(&b.baseline, b.decisions);
        let opt = ScenarioBench::states_per_decision(&b.optimized, b.decisions);
        let red = b.reduction();
        if red >= 2.0 {
            at_2x += 1;
        }
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>8.2}x {:>9.0}%",
            b.scenario,
            base,
            opt,
            red,
            b.agreement * 100.0
        );
    }
    let json = to_json(&benches, decisions, quick);
    std::fs::write(&out, json.to_string_pretty()).expect("write bench artifact");
    println!("wrote {out}");
    if at_2x < 3 {
        eprintln!("regression: only {at_2x} of 5 scenarios at >=2x reduction");
        std::process::exit(1);
    }
}
