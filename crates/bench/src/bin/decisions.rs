//! The decision hot-path benchmark. Usage:
//!
//! ```text
//! decisions [--quick] [--out PATH] [--policy] [--policy-out PATH]
//! ```
//!
//! Resolves a stream of predictive decisions for every registered scenario
//! (randtree/gossip/paxos/dissem/ring) through the pre-fusion three-pass
//! evaluator (baseline) and the fused single-pass + EvalCache pipeline
//! (optimized), then writes the before/after record to `PATH` (default:
//! `BENCH_decision.json` at the current directory). All reported costs are
//! deterministic sim-costs — states explored per resolved decision at the
//! runtime's 1 µs/state rate — so the artifact is byte-stable across
//! machines. `--quick` shrinks the decision stream for CI smoke runs.
//!
//! `--policy` additionally writes the cross-run policy-store arm to
//! `BENCH_policy.json` (or `--policy-out PATH`): the same stream resolved
//! cold through a recording ladder (training a content-addressed store) and
//! then warm through a store-loaded ladder whose hits skip lookahead
//! entirely, with the governed refresh cadence included in the warm cost.
//!
//! Exit status: 0 when at least 3 of the 5 scenarios show a ≥ 2× reduction
//! (the bench's regression bar) — and, with `--policy`, at least 3
//! scenarios at ≥ 5× warm speedup with exact warm≡cold agreement on all;
//! 1 otherwise.

use cb_bench::decisions::{policy_to_json, run_all, to_json, ScenarioBench};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut policy = false;
    let mut out = "BENCH_decision.json".to_string();
    let mut policy_out = "BENCH_policy.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--policy" => policy = true,
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--policy-out" => {
                i += 1;
                policy_out = args.get(i).expect("--policy-out needs a path").clone();
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: decisions [--quick] [--out PATH] [--policy] [--policy-out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let decisions = if quick { 2 } else { 8 };
    let benches = run_all(decisions);
    println!("decision hot path: states explored per resolved decision (sim-cost, 1 us/state)");
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>10}",
        "scenario", "baseline", "optimized", "speedup", "agreement"
    );
    let mut at_2x = 0;
    for b in &benches {
        let base = ScenarioBench::states_per_decision(&b.baseline, b.decisions);
        let opt = ScenarioBench::states_per_decision(&b.optimized, b.decisions);
        let red = b.reduction();
        if red >= 2.0 {
            at_2x += 1;
        }
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>8.2}x {:>9.0}%",
            b.scenario,
            base,
            opt,
            red,
            b.agreement * 100.0
        );
    }
    let json = to_json(&benches, decisions, quick);
    std::fs::write(&out, json.to_string_pretty()).expect("write bench artifact");
    println!("wrote {out}");
    let mut failed = false;
    if at_2x < 3 {
        eprintln!("regression: only {at_2x} of 5 scenarios at >=2x reduction");
        failed = true;
    }
    if policy {
        println!();
        println!("policy store: cold (recording ladder) vs warm (store-hit) states per decision");
        println!(
            "{:<10} {:>12} {:>12} {:>9} {:>10} {:>8}",
            "scenario", "cold", "warm", "speedup", "agreement", "entries"
        );
        let mut at_5x = 0;
        let mut agreement_ok = true;
        for b in &benches {
            let p = &b.policy;
            if p.speedup() >= 5.0 {
                at_5x += 1;
            }
            agreement_ok &= p.agreement == 1.0;
            println!(
                "{:<10} {:>12.1} {:>12.1} {:>8.2}x {:>9.0}% {:>8}",
                b.scenario,
                p.cold_states_per_decision(),
                p.warm_states_per_decision(),
                p.speedup(),
                p.agreement * 100.0,
                p.trained_entries
            );
        }
        let json = policy_to_json(&benches, decisions, quick);
        std::fs::write(&policy_out, json.to_string_pretty()).expect("write policy bench artifact");
        println!("wrote {policy_out}");
        if at_5x < 3 {
            eprintln!("regression: only {at_5x} of 5 scenarios at >=5x warm speedup");
            failed = true;
        }
        if !agreement_ok {
            eprintln!("regression: warm resolution disagreed with cold lookahead");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
