//! Multi-seed fault-injection campaigns over the registered scenarios.
//!
//! ```text
//! campaign [--scenario NAME] [--seeds N] [--base-seed S] [--plan SPEC]
//!          [--workers N] [--no-shrink] [--no-determinism] [--out DIR]
//!          [--telemetry] [--lookahead] [--no-evalcache]
//!          [--storm] [--ladder] [--deadline STATES] [--chrome]
//!          [--nodes N] [--unsafe-reads] [--workload PROFILE]
//!          [--record-policy PILE.cbp] [--policy PILE.cbp]
//!          [--corpus DIR]
//! campaign --replay ARTIFACT.json
//! campaign --list
//! ```
//!
//! With no `--scenario`, sweeps every registered scenario. On an oracle
//! violation a JSON failure artifact lands under `--out` (default
//! `results/campaigns/`) carrying the seed, the fault-plan spec, the
//! shrunk minimal repro, oracle verdicts, and the final trace window;
//! `--replay` re-runs an artifact and verifies the violation reproduces;
//! artifacts record the fault plan but not scenario-config arms, so pass
//! the same arm flags the sweep used (e.g. `--replay ART --unsafe-reads`).
//! `--telemetry` prints a per-scenario digest of the merged telemetry
//! (decision-latency p50/p99 on the sim-cost clock, cache hit rate,
//! states explored per decision) after each summary line.
//! `--lookahead` switches the randtree scenario to its predictive-lookahead
//! arm (every decision runs the fused evaluator), and `--no-evalcache`
//! disables the per-decision EvalCache there — running a sweep with and
//! without it and diffing the masked artifacts is the operational
//! cache-transparency check (the `cache_transparency` integration test in
//! `cb-randtree` automates it).
//! `--storm` layers the fault-storm schedule (gray-failure stalls, a
//! latency spike, extra loss) onto the randtree, gossip, kv, and mencius
//! scenarios; `--unsafe-reads` switches the kv scenario to its
//! deliberately unsound local-read arm (no guard round), the planted bug
//! the linearizability oracle exists to catch — a sweep with it is
//! *expected* to exit 1;
//! `--ladder` resolves their choices through the degradation-governed
//! resolver ladder; `--deadline STATES` sets the per-decision prediction
//! deadline on randtree (enforced in the ladder arm, reported-only in the
//! lookahead control arm). Together they reproduce experiment E11.
//! `--nodes N` overrides the fleet size on the gossip and dissem
//! scenarios — `--nodes 10000` is the internet-scale arm; fleets of 1000+
//! nodes automatically use the implicit path store and lite tracing.
//! `--record-policy PILE` trains the cross-run policy store: the randtree
//! and kv scenarios resolve through the recording ladder, the per-seed
//! stores are merged deterministically (worker-count invariant), and the
//! result is saved as a versioned policy pile at PILE. `--policy PILE`
//! loads a previously recorded pile and warm-starts those scenarios'
//! ladders from it, so store-hits skip lookahead entirely (watch
//! `core.policy.hits` in `--telemetry` artifacts). The two flags compose:
//! load-and-re-record refreshes a pile in place.
//! `--workload PROFILE` drives the sweep with an open-loop aggregate
//! client population (`steady`, `flash`, `flash-off`, `million`): the kv
//! scenario gains a generator node, profile-driven admission control and
//! bounded retries, and the goodput-floor + metastability oracles; mencius
//! is driven through its consensus entry point; the remaining protocols
//! run harder via the profile's scale hint. Composes with `--storm` /
//! `--unsafe-reads` / the policy flags on the KV family (other arm flags
//! still apply to their own scenarios). The `flash-off` profile is the
//! deliberately unprotected arm — a sweep with it is *expected* to exit 1
//! with a metastability detection.
//! `--corpus DIR` ingests **every** seed's run (passing and failing) into
//! the queryable campaign corpus at DIR — content-addressed record objects
//! plus a deterministic `index.cbc` — creating or extending it in place.
//! Records are wall-masked at ingestion, so the resulting index bytes are
//! identical for any `--workers` count; query and diff it with the
//! `corpus` binary.
//! `--chrome` additionally writes `<artifact>.chrome.json` next to every
//! failure artifact — Chrome trace-event JSON of the run's provenance tail,
//! loadable at `ui.perfetto.dev` (use the `trace` binary for ad-hoc
//! explain/blame queries over the same artifacts).
//! Exit status: 0 = all oracles passed, 1 = violations (or a replay that
//! did reproduce the recorded violation — that's what a repro is for),
//! 2 = usage error.

use cb_bench::registry::{scenario_by_name, scenario_names};
use cb_harness::prelude::*;
use cb_harness::{read_artifact, replay_artifact};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--scenario NAME] [--seeds N] [--base-seed S] [--plan SPEC]\n\
         \x20               [--workers N] [--no-shrink] [--no-determinism] [--out DIR]\n\
         \x20               [--telemetry] [--lookahead] [--no-evalcache]\n\
         \x20               [--storm] [--ladder] [--deadline STATES] [--chrome]\n\
         \x20               [--nodes N] [--unsafe-reads] [--workload PROFILE]\n\
         \x20               [--record-policy PILE.cbp] [--policy PILE.cbp]\n\
         \x20               [--corpus DIR]\n\
         \x20      campaign --replay ARTIFACT.json\n\
         \x20      campaign --list\n\
         scenarios: {}\n\
         workload profiles: {}",
        scenario_names().join(", "),
        cb_workload::WorkloadProfile::names().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_arg: Option<String> = None;
    let mut replay: Option<PathBuf> = None;
    let mut show_telemetry = false;
    let mut lookahead = false;
    let mut evalcache = true;
    let mut storm = false;
    let mut unsafe_reads = false;
    let mut ladder = false;
    let mut deadline: u64 = 0;
    let mut chrome = false;
    let mut nodes: Option<usize> = None;
    let mut record_policy: Option<PathBuf> = None;
    let mut policy_path: Option<PathBuf> = None;
    let mut workload: Option<cb_workload::WorkloadProfile> = None;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut cfg = CampaignConfig::default();
    let mut i = 0;
    let need = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| {
                eprintln!("{flag} needs an argument");
                usage();
            })
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for name in scenario_names() {
                    println!("{name}");
                }
                return;
            }
            "--scenario" => scenario_arg = Some(need(&args, &mut i, "--scenario")),
            "--seeds" => {
                cfg.seeds = need(&args, &mut i, "--seeds").parse().unwrap_or_else(|_| {
                    eprintln!("--seeds wants a number");
                    usage();
                })
            }
            "--base-seed" => {
                cfg.base_seed = need(&args, &mut i, "--base-seed")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--base-seed wants a number");
                        usage();
                    })
            }
            "--plan" => {
                let spec = need(&args, &mut i, "--plan");
                cfg.plan_override = Some(FaultPlan::from_spec(&spec).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                }));
            }
            "--workers" => {
                cfg.workers = need(&args, &mut i, "--workers")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--workers wants a number");
                        usage();
                    })
            }
            "--no-shrink" => cfg.shrink = false,
            "--lookahead" => lookahead = true,
            "--no-evalcache" => evalcache = false,
            "--storm" => storm = true,
            "--unsafe-reads" => unsafe_reads = true,
            "--ladder" => ladder = true,
            "--deadline" => {
                deadline = need(&args, &mut i, "--deadline")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--deadline wants a number of explored states");
                        usage();
                    })
            }
            "--chrome" => chrome = true,
            "--record-policy" => {
                record_policy = Some(PathBuf::from(need(&args, &mut i, "--record-policy")))
            }
            "--policy" => policy_path = Some(PathBuf::from(need(&args, &mut i, "--policy"))),
            "--corpus" => {
                corpus_dir = Some(PathBuf::from(need(&args, &mut i, "--corpus")));
                cfg.keep_reports = true;
            }
            "--workload" => {
                let name = need(&args, &mut i, "--workload");
                workload = Some(cb_workload::WorkloadProfile::by_name(&name).unwrap_or_else(
                    || {
                        eprintln!(
                            "unknown workload profile '{name}' (profiles: {})",
                            cb_workload::WorkloadProfile::names().join(", ")
                        );
                        usage();
                    },
                ));
            }
            "--nodes" => {
                nodes = Some(need(&args, &mut i, "--nodes").parse().unwrap_or_else(|_| {
                    eprintln!("--nodes wants a fleet size");
                    usage();
                }))
            }
            "--telemetry" => show_telemetry = true,
            "--no-determinism" => cfg.check_determinism = false,
            "--out" => cfg.artifact_dir = Some(PathBuf::from(need(&args, &mut i, "--out"))),
            "--replay" => replay = Some(PathBuf::from(need(&args, &mut i, "--replay"))),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    // Warm-start pile: loaded once, handed to scenarios by name. Policy
    // flags apply to the scenarios whose decisions route through the
    // ladder (randtree, kv).
    let loaded_pile = policy_path.as_ref().map(|p| {
        cb_policy::PolicyPile::load(p).unwrap_or_else(|e| {
            eprintln!("--policy {}: {e}", p.display());
            std::process::exit(2);
        })
    });
    let store_for = |name: &str| -> Option<std::sync::Arc<cb_policy::PolicyStore>> {
        loaded_pile
            .as_ref()
            .and_then(|p| p.get(name))
            .cloned()
            .map(std::sync::Arc::new)
    };
    let policy_on = loaded_pile.is_some() || record_policy.is_some();

    if let Some(path) = replay {
        let artifact = match read_artifact(&path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        let Some(mut scenario) = scenario_by_name(&artifact.scenario) else {
            eprintln!("artifact names unknown scenario '{}'", artifact.scenario);
            std::process::exit(2);
        };
        // Artifacts record the fault plan but not scenario-config arms
        // (--unsafe-reads, --lookahead, ...). Re-specify the arm flags the
        // sweep used and the same overrides are applied here, so arm
        // artifacts round-trip: `--replay ART --unsafe-reads`.
        match artifact.scenario.as_str() {
            "kv" if unsafe_reads || storm || policy_on || workload.is_some() => {
                scenario = Box::new(cb_kv::KvCampaign {
                    storm,
                    unsafe_reads,
                    policy: store_for("kv"),
                    workload: workload.clone(),
                    ..Default::default()
                })
            }
            "mencius" if storm || workload.is_some() => {
                scenario = Box::new(cb_paxos::MenciusCampaign {
                    storm,
                    workload: workload.clone(),
                    ..Default::default()
                })
            }
            name if workload.is_some() => {
                if let Some(armed) =
                    cb_bench::registry::workload_arm(name, workload.as_ref().unwrap())
                {
                    scenario = armed;
                }
            }
            "randtree"
                if lookahead || !evalcache || storm || ladder || deadline > 0 || policy_on =>
            {
                scenario = Box::new(cb_randtree::RandTreeCampaign {
                    lookahead,
                    evalcache,
                    ladder,
                    deadline_states: deadline,
                    storm,
                    policy: store_for("randtree"),
                    ..Default::default()
                })
            }
            _ => {}
        }
        println!(
            "replaying {} seed {} plan '{}'",
            artifact.scenario,
            artifact.seed,
            artifact.plan.to_spec()
        );
        match replay_artifact(scenario.as_ref(), &artifact) {
            Ok(report) => {
                println!(
                    "violation reproduced: {:?} (fingerprint {})",
                    report.failing_oracles(),
                    report.fingerprint
                );
                if report.fingerprint == artifact.fingerprint {
                    println!("fingerprint matches the recorded run exactly");
                } else {
                    println!(
                        "note: fingerprint differs from recorded {} (artifact predates a code change?)",
                        artifact.fingerprint
                    );
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    let mut scenarios: Vec<Box<dyn Scenario>> = match &scenario_arg {
        Some(name) => match scenario_by_name(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown scenario '{name}'");
                usage();
            }
        },
        None => cb_bench::registry::all_scenarios(),
    };
    if lookahead || !evalcache || storm || ladder || deadline > 0 || unsafe_reads || policy_on {
        // The lookahead/evalcache/deadline knobs live on the randtree
        // scenario — the one campaign protocol whose choices route through
        // the predictive evaluator; storm/ladder also apply to gossip, and
        // storm/unsafe-reads to the replicated-KV family (kv, mencius).
        // Swap the registry entries for configured instances; other
        // scenarios are unaffected.
        let mut touched = false;
        if let Some(slot) = scenarios.iter_mut().find(|s| s.name() == "randtree") {
            *slot = Box::new(cb_randtree::RandTreeCampaign {
                lookahead,
                evalcache,
                ladder,
                deadline_states: deadline,
                storm,
                policy: store_for("randtree"),
                record_policy: record_policy.is_some(),
                ..Default::default()
            });
            touched = true;
        }
        if storm || ladder {
            if let Some(slot) = scenarios.iter_mut().find(|s| s.name() == "gossip") {
                *slot = Box::new(cb_gossip::GossipCampaign {
                    ladder,
                    storm,
                    ..Default::default()
                });
                touched = true;
            }
        }
        if storm || unsafe_reads || policy_on {
            if let Some(slot) = scenarios.iter_mut().find(|s| s.name() == "kv") {
                *slot = Box::new(cb_kv::KvCampaign {
                    storm,
                    unsafe_reads,
                    policy: store_for("kv"),
                    record_policy: record_policy.is_some(),
                    ..Default::default()
                });
                touched = true;
            }
        }
        if storm {
            if let Some(slot) = scenarios.iter_mut().find(|s| s.name() == "mencius") {
                *slot = Box::new(cb_paxos::MenciusCampaign {
                    storm,
                    ..Default::default()
                });
                touched = true;
            }
        }
        if !touched {
            eprintln!(
                "--lookahead/--no-evalcache/--storm/--ladder/--deadline/--unsafe-reads/\
                 --policy/--record-policy apply to the randtree, gossip, kv, and mencius \
                 scenarios"
            );
            usage();
        }
    }
    if let Some(n) = nodes {
        // Fleet-size override for the scale-capable scenarios. Composes
        // with --storm/--ladder on gossip (re-applied here so the earlier
        // swap is not lost).
        let mut touched = false;
        if let Some(slot) = scenarios.iter_mut().find(|s| s.name() == "gossip") {
            *slot = Box::new(cb_gossip::GossipCampaign {
                nodes: n,
                ladder,
                storm,
                ..Default::default()
            });
            touched = true;
        }
        if let Some(slot) = scenarios.iter_mut().find(|s| s.name() == "dissem") {
            *slot = Box::new(cb_dissem::SwarmCampaign {
                peers: n,
                ..Default::default()
            });
            touched = true;
        }
        if !touched {
            eprintln!("--nodes applies to the gossip and dissem scenarios");
            usage();
        }
    }
    if let Some(p) = &workload {
        // The open-loop workload arm. The KV family composes with the arm
        // flags above (storm/unsafe-reads/policy); the scale-driven
        // scenarios take the registry's workload arm, with --nodes
        // re-applied where it overlaps.
        for slot in scenarios.iter_mut() {
            match slot.name() {
                "kv" => {
                    *slot = Box::new(cb_kv::KvCampaign {
                        storm,
                        unsafe_reads,
                        policy: store_for("kv"),
                        record_policy: record_policy.is_some(),
                        workload: Some(p.clone()),
                        ..Default::default()
                    });
                }
                "mencius" => {
                    *slot = Box::new(cb_paxos::MenciusCampaign {
                        storm,
                        workload: Some(p.clone()),
                        ..Default::default()
                    });
                }
                "gossip" => {
                    let d = cb_gossip::GossipCampaign::default();
                    *slot = Box::new(cb_gossip::GossipCampaign {
                        nodes: nodes.unwrap_or(d.nodes),
                        rumors: d.rumors * p.scale_hint(),
                        ladder,
                        storm,
                        ..d
                    });
                }
                "dissem" => {
                    let d = cb_dissem::SwarmCampaign::default();
                    *slot = Box::new(cb_dissem::SwarmCampaign {
                        peers: nodes.unwrap_or(d.peers),
                        blocks: d.blocks * p.scale_hint(),
                        ..d
                    });
                }
                "randtree" => {
                    let d = cb_randtree::RandTreeCampaign::default();
                    *slot = Box::new(cb_randtree::RandTreeCampaign {
                        nodes: d.nodes * p.scale_hint() as usize,
                        lookahead,
                        evalcache,
                        ladder,
                        deadline_states: deadline,
                        storm,
                        policy: store_for("randtree"),
                        record_policy: record_policy.is_some(),
                        ..d
                    });
                }
                name => {
                    if let Some(armed) = cb_bench::registry::workload_arm(name, p) {
                        *slot = armed;
                    }
                }
            }
        }
    }

    // Corpus auto-ingestion: load an existing corpus to extend in place,
    // or start fresh. Every seed's report is retained and distilled.
    let mut corpus = corpus_dir.as_ref().map(|dir| {
        if dir.join(cb_corpus::INDEX_FILE).exists() {
            cb_corpus::Corpus::load(dir).unwrap_or_else(|e| {
                eprintln!("--corpus {}: {e}", dir.display());
                std::process::exit(2);
            })
        } else {
            cb_corpus::Corpus::new()
        }
    });

    let mut any_failed = false;
    // Starting from the loaded pile (when both flags are given) makes
    // --policy --record-policy a refresh-in-place: stale entries are
    // overwritten by the merge rule, untouched scenarios keep theirs.
    let mut recorded_pile = if record_policy.is_some() {
        loaded_pile.clone().unwrap_or_default()
    } else {
        cb_policy::PolicyPile::new()
    };
    for scenario in &scenarios {
        let start = std::time::Instant::now();
        let outcome = run_campaign(scenario.as_ref(), &cfg);
        if let Some(store) = &outcome.policy {
            recorded_pile.insert_store(store.clone());
        }
        if let Some(c) = corpus.as_mut() {
            c.ingest_outcome(&outcome);
        }
        println!(
            "{} ({:.1}s wall)",
            outcome.summary_line(),
            start.elapsed().as_secs_f64()
        );
        if show_telemetry {
            let s = cb_telemetry::summary::summarize(&outcome.telemetry);
            println!(
                "  telemetry: {} decisions, latency p50/p99 {}/{} sim-us, \
                 cache hit {}, {:.2} states/decision, {} states visited",
                s.decisions,
                s.decision_p50_sim_us,
                s.decision_p99_sim_us,
                cb_telemetry::summary::fmt_rate(s.cache_hit_rate),
                s.states_per_decision,
                s.states_visited
            );
        }
        for f in &outcome.failures {
            println!(
                "  seed {}: FAIL {:?}",
                f.report.seed,
                f.report.failing_oracles()
            );
            println!("    plan:   {}", f.report.plan);
            println!("    shrunk: {}", f.shrunk_plan);
            if let Some(p) = &f.artifact {
                println!("    artifact: {}", p.display());
                if chrome {
                    // Sidecar Perfetto view of the same provenance tail.
                    let chrome_path = p.with_extension("chrome.json");
                    let json = cb_trace::chrome_trace_json(&f.report.provenance, false);
                    match std::fs::write(&chrome_path, json + "\n") {
                        Ok(()) => println!("    chrome:   {}", chrome_path.display()),
                        Err(e) => eprintln!("    chrome: write failed: {e}"),
                    }
                }
            }
        }
        for seed in &outcome.nondeterministic_seeds {
            println!("  seed {seed}: NONDETERMINISTIC (fingerprint mismatch on re-run)");
        }
        any_failed |= !outcome.all_passed();
    }
    if let (Some(dir), Some(c)) = (&corpus_dir, &corpus) {
        match c.save(dir) {
            Ok(()) => println!("corpus: {} record(s) -> {}", c.len(), dir.display()),
            Err(e) => {
                eprintln!("--corpus {}: {e}", dir.display());
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &record_policy {
        match recorded_pile.save(path) {
            Ok(()) => println!(
                "policy pile: {} scenario(s), {} entries, content id {} -> {}",
                recorded_pile.len(),
                recorded_pile.total_entries(),
                recorded_pile.content_id(),
                path.display()
            ),
            Err(e) => {
                eprintln!("--record-policy {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    std::process::exit(if any_failed { 1 } else { 0 });
}
