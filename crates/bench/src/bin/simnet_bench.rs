//! The simulator hot-loop benchmark. Usage:
//!
//! ```text
//! simnet_bench [--quick] [--out PATH] [--seed N]
//! ```
//!
//! Runs the `{heap, wheel} × {full, lite}` engine arms over the same
//! seeded workload at 100 / 1 000 / 10 000 nodes (`--quick`: 100 / 1 000
//! with a shorter horizon) and writes the events/sec trajectory to `PATH`
//! (default: `BENCH_simnet.json` at the current directory). Within each
//! trace mode, heap and wheel fingerprints are asserted equal — the bench
//! doubles as the always-on scheduler differential. Keys suffixed `_wall`
//! are machine-dependent; mask them before comparing artifacts.
//!
//! Exit status: 0 when every size keeps `wheel_full ≥ 0.85 × heap_full`
//! events/sec and the largest size clears the 5× shipped-vs-baseline bar
//! (gates skipped under `--quick`, which exists for smoke coverage, not
//! measurement); 1 on a gate failure, 2 on usage error.

use cb_bench::simnet::{run_size, to_json, SizeBench};
use cb_simnet::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_simnet.json".to_string();
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    })
                    .clone();
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: simnet_bench [--quick] [--out PATH] [--seed N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (sizes, horizon) = if quick {
        (vec![100usize, 1000], SimTime::from_millis(2000))
    } else {
        (vec![100usize, 1000, 10000], SimTime::from_secs(5))
    };
    let tick = SimDuration::from_millis(100);

    println!("simnet hot loop: events/sec by scheduler arm (fingerprints asserted equal)");
    println!(
        "{:>7} {:>12} {:>14} {:>14} {:>14} {:>14} {:>9} {:>12}",
        "nodes",
        "events",
        "heap_full",
        "wheel_full",
        "heap_lite",
        "wheel_lite",
        "speedup",
        "rss_kb"
    );
    let mut results: Vec<SizeBench> = Vec::new();
    for &n in &sizes {
        let s = run_size(n, seed, horizon, tick);
        let eps = |sched: &str, mode: &str| {
            s.arms
                .iter()
                .find(|a| a.scheduler == sched && a.mode == mode)
                .map(|a| a.events_per_sec())
                .unwrap_or(0.0)
        };
        println!(
            "{:>7} {:>12} {:>14.0} {:>14.0} {:>14.0} {:>14.0} {:>8.2}x {:>12}",
            s.nodes,
            s.arms[0].events,
            eps("heap", "full"),
            eps("wheel", "full"),
            eps("heap", "lite"),
            eps("wheel", "lite"),
            s.speedup_vs_baseline(),
            s.peak_rss_kb,
        );
        results.push(s);
    }

    let json = to_json(&results, seed, horizon, quick);
    std::fs::write(&out, json.to_string_pretty() + "\n").expect("write bench artifact");
    println!("wrote {out}");

    if quick {
        return;
    }
    let mut failed = false;
    for s in &results {
        let ratio = s.wheel_full_vs_heap_full();
        if ratio < 0.85 {
            eprintln!(
                "regression: {} nodes wheel_full at {:.2}x of heap_full (gate 0.85)",
                s.nodes, ratio
            );
            failed = true;
        }
    }
    if let Some(largest) = results.iter().max_by_key(|s| s.nodes) {
        let speedup = largest.speedup_vs_baseline();
        if speedup < 5.0 {
            eprintln!(
                "regression: {} nodes shipped-vs-baseline speedup {:.2}x under the 5x gate",
                largest.nodes, speedup
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
