//! Decision-provenance queries over campaign failure artifacts.
//!
//! ```text
//! trace explain ARTIFACT.json [SPAN_ID]     # why a decision picked what it picked
//! trace blame   ARTIFACT.json [SPAN_ID]     # causal chain behind a violation / steering fire
//! trace slowest ARTIFACT.json [K]           # top-K most expensive decisions
//! trace chrome  ARTIFACT.json [--out FILE] [--masked]
//! ```
//!
//! Artifacts are the JSON failure files the `campaign` binary writes under
//! `results/campaigns/`; their `report.provenance` section embeds the fleet's
//! flight-recorder tail. Span ids use the `t<ns>.n<node>.s<seq>` notation
//! printed by every query.
//!
//! * `explain` renders a decision span's option table (per-option objective,
//!   predicted violations, explored states), the winner, the resolver and
//!   ladder rung that picked it, and the governor's level + dominant
//!   pressure cause. Default span: the **last** decision in the tail.
//! * `blame` walks parent edges backwards from a violation (default: the
//!   first synthesised `violation` span; falls back to the last
//!   `steering_fire`) and prints the causal chain, the originating decision
//!   spans it reaches, and any parent ids that fell off the bounded ring.
//! * `slowest` ranks decisions by their deterministic sim-cost.
//! * `chrome` converts the tail to Chrome trace-event JSON: load the file at
//!   `ui.perfetto.dev` (or `chrome://tracing`) to see per-node tracks with
//!   flow arrows along every causal edge. `--masked` blanks wall clocks for
//!   byte-stable output.
//!
//! Exit status: 0 = query answered, 1 = span not found / nothing to blame,
//! 2 = usage or artifact error.

use cb_harness::{parse_provenance, Json};
use cb_trace::{blame, chrome_trace_json, explain, slowest, Span, SpanId, SpanIndex, SpanKind};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: trace explain ARTIFACT.json [SPAN_ID]\n\
         \x20      trace blame   ARTIFACT.json [SPAN_ID]\n\
         \x20      trace slowest ARTIFACT.json [K]\n\
         \x20      trace chrome  ARTIFACT.json [--out FILE] [--masked]\n\
         span ids look like t1500000000.n3.s27 (see artifact 'provenance.spans')"
    );
    std::process::exit(2);
}

/// Loads the provenance spans from a failure artifact (the original
/// report's section — the shrunk report has its own, but blame belongs on
/// the run the oracle actually flagged).
fn load_spans(path: &str) -> Vec<Span> {
    let text = match std::fs::read_to_string(Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("trace: {path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    };
    let section = json
        .get("report")
        .and_then(|r| r.get("provenance"))
        .or_else(|| json.get("provenance"))
        .unwrap_or_else(|| {
            eprintln!("trace: {path} has no provenance section");
            std::process::exit(2);
        });
    match parse_provenance(section) {
        Ok(spans) => spans,
        Err(e) => {
            eprintln!("trace: {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn parse_span_id(text: &str) -> SpanId {
    text.parse().unwrap_or_else(|e: String| {
        eprintln!("trace: {e}");
        std::process::exit(2);
    })
}

fn span_line(s: &Span) -> String {
    let mut line = format!(
        "{:>14} ns  node {:>3}  {:<16} {}",
        s.id.at_ns,
        if s.id.node == u32::MAX {
            "harness".to_string()
        } else {
            s.id.node.to_string()
        },
        s.kind.label(),
        s.name
    );
    if s.sim_cost_us > 0 {
        line.push_str(&format!("  [{} sim-us]", s.sim_cost_us));
    }
    line
}

fn cmd_explain(spans: &[Span], target: Option<&str>) -> i32 {
    let id = match target {
        Some(t) => parse_span_id(t),
        None => match SpanIndex::last_of_kind(spans, SpanKind::Decision) {
            Some(s) => s.id,
            None => {
                eprintln!("trace: no decision spans in the tail");
                return 1;
            }
        },
    };
    match explain(spans, id) {
        Some(text) => {
            print!("{text}");
            0
        }
        None => {
            eprintln!("trace: {id} is not a retained decision span");
            1
        }
    }
}

fn cmd_blame(spans: &[Span], target: Option<&str>) -> i32 {
    let id = match target {
        Some(t) => parse_span_id(t),
        None => match SpanIndex::first_of_kind(spans, SpanKind::Violation)
            .or_else(|| SpanIndex::last_of_kind(spans, SpanKind::SteeringFire))
        {
            Some(s) => s.id,
            None => {
                eprintln!("trace: nothing to blame (no violation or steering_fire span)");
                return 1;
            }
        },
    };
    let Some(chain) = blame(spans, id) else {
        eprintln!("trace: {id} is not a retained span");
        return 1;
    };
    println!(
        "blame {id}: {} spans on the causal chain",
        chain.chain.len()
    );
    const SHOWN: usize = 32;
    for s in chain.chain.iter().take(SHOWN) {
        println!("  {}", span_line(s));
    }
    if chain.chain.len() > SHOWN {
        println!(
            "  ... ({} more spans on the chain)",
            chain.chain.len() - SHOWN
        );
    }
    if !chain.decisions.is_empty() {
        let ids: Vec<String> = chain.decisions.iter().map(|d| d.to_string()).collect();
        println!(
            "originating decisions ({}): {}",
            chain.decisions.len(),
            ids.join(", ")
        );
        println!(
            "  (run `trace explain ARTIFACT {}` for the option table)",
            ids[0]
        );
    } else {
        println!("originating decisions: none reached");
    }
    println!(
        "nodes crossed: {:?}{}",
        chain.nodes,
        if chain.unresolved.is_empty() {
            String::new()
        } else {
            format!(
                "  ({} parent(s) evicted from the ring: {})",
                chain.unresolved.len(),
                chain
                    .unresolved
                    .iter()
                    .map(|u| u.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    );
    0
}

fn cmd_slowest(spans: &[Span], k: usize) -> i32 {
    let top = slowest(spans, k);
    if top.is_empty() {
        eprintln!("trace: no decision spans in the tail");
        return 1;
    }
    println!("top {} decisions by sim-cost:", top.len());
    for s in top {
        println!("  {}  [{}]", span_line(s), s.id);
    }
    0
}

fn cmd_chrome(spans: &[Span], out: Option<&str>, masked: bool) -> i32 {
    let json = chrome_trace_json(spans, masked);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("trace: cannot write {path}: {e}");
                return 2;
            }
            println!("wrote chrome trace ({} spans) to {path}", spans.len());
        }
        None => println!("{json}"),
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(artifact)) = (args.first(), args.get(1)) else {
        usage();
    };
    let spans = load_spans(artifact);
    let code = match cmd.as_str() {
        "explain" => cmd_explain(&spans, args.get(2).map(String::as_str)),
        "blame" => cmd_blame(&spans, args.get(2).map(String::as_str)),
        "slowest" => {
            let k = match args.get(2) {
                Some(t) => t.parse().unwrap_or_else(|_| {
                    eprintln!("trace: K must be a number");
                    std::process::exit(2);
                }),
                None => 10,
            };
            cmd_slowest(&spans, k)
        }
        "chrome" => {
            let mut out: Option<&str> = None;
            let mut masked = false;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--out" => {
                        i += 1;
                        out = Some(args.get(i).map(String::as_str).unwrap_or_else(|| {
                            eprintln!("--out needs a path");
                            usage();
                        }));
                    }
                    "--masked" => masked = true,
                    other => {
                        eprintln!("unknown argument: {other}");
                        usage();
                    }
                }
                i += 1;
            }
            cmd_chrome(&spans, out, masked)
        }
        other => {
            eprintln!("unknown command: {other}");
            usage();
        }
    };
    std::process::exit(code);
}
