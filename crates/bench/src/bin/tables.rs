//! Regenerates the paper's tables. Usage:
//!
//! ```text
//! tables [--quick] [--exp e2] [--telemetry] [--json DIR]
//! ```
//!
//! With no arguments, runs every experiment at paper scale and prints the
//! tables. `--quick` shrinks sizes for a fast smoke run; `--exp eN`
//! selects one experiment; `--telemetry` is shorthand for `--exp t1` (the
//! per-scenario telemetry digest); `--json DIR` additionally writes one
//! JSON file per table into DIR.

use cb_bench::experiments::{self, Scale};
use cb_bench::Table;

/// An experiment entry: id plus its runner.
type Runner = (&'static str, fn(Scale) -> Table);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::paper();
    let mut only: Option<String> = None;
    let mut json_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--exp" => {
                i += 1;
                only = Some(args.get(i).expect("--exp needs an argument").to_lowercase());
            }
            "--telemetry" => only = Some("t1".to_string()),
            "--json" => {
                i += 1;
                json_dir = Some(args.get(i).expect("--json needs a directory").clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: tables [--quick] [--exp eN] [--telemetry] [--json DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let runners: Vec<Runner> = vec![
        ("e1", experiments::e1),
        ("e2", experiments::e2),
        ("e3", experiments::e3),
        ("e4", experiments::e4),
        ("e5", experiments::e5),
        ("e6", experiments::e6),
        ("e7", experiments::e7),
        ("e8", experiments::e8),
        ("e10", experiments::e10),
        ("e11", experiments::e11),
        ("e12", experiments::e12),
        ("e13", experiments::e13),
        ("a1", experiments::a1),
        ("a2", experiments::a2),
        ("t1", experiments::t1),
    ];
    for (id, run) in runners {
        if let Some(sel) = &only {
            if sel != id {
                continue;
            }
        }
        let start = std::time::Instant::now();
        let table = run(scale);
        println!("{table}");
        println!("   ({:.1}s)\n", start.elapsed().as_secs_f64());
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = format!("{dir}/{id}.json");
            std::fs::write(&path, table.to_json().to_string_pretty() + "\n").expect("write json");
        }
    }
}
