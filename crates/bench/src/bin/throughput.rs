//! The overload-survival throughput benchmark. Usage:
//!
//! ```text
//! throughput [--quick] [--out PATH] [--seed N]
//! ```
//!
//! Runs the open-loop workload arms — `steady`, `flash`, `flash-off` —
//! over the replicated KV scenario and writes the offered/served/shed
//! trajectory plus the governor's step-down/recovery record to `PATH`
//! (default: `BENCH_throughput.json` at the current directory). The
//! `flash-off` arm always runs its pinned metastability seed; `--seed`
//! moves the surviving arms only. Keys suffixed `_wall` are machine-
//! dependent; mask them before comparing artifacts.
//!
//! Exit status: 0 when the flash arm sheds, steps down, and recovers to
//! rung 0, both protected arms clear their goodput floors, and the
//! `flash-off` arm is flagged metastable (gates skipped under `--quick`,
//! which also shortens the horizon — smoke coverage, not measurement);
//! 1 on a gate failure, 2 on usage error.

use cb_bench::throughput::{arm_plan, gate_failures, run_arm, to_json, WorkloadArmResult};
use cb_simnet::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_throughput.json".to_string();
    let mut seed = 11u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    })
                    .clone();
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: throughput [--quick] [--out PATH] [--seed N]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // The full horizon matches the campaign default (offered load ends at
    // 2/3, leaving a drain tail); quick keeps the flash window [40s, 70s)
    // plus its 30s recovery window inside the run.
    let horizon = if quick {
        SimTime::from_secs(120)
    } else {
        SimTime::from_secs(180)
    };

    println!("overload survival: open-loop workload arms over the replicated KV");
    println!(
        "{:>10} {:>10} {:>10} {:>9} {:>8} {:>7} {:>6} {:>5} {:>11} {:>8}",
        "profile",
        "offered",
        "served",
        "goodput",
        "shed",
        "stepdn",
        "recov",
        "rung",
        "metastable",
        "secs"
    );
    let mut arms: Vec<WorkloadArmResult> = Vec::new();
    for (profile, arm_seed) in arm_plan(seed) {
        let a = run_arm(profile, arm_seed, horizon);
        println!(
            "{:>10} {:>10} {:>10} {:>9.3} {:>8} {:>7} {:>6} {:>5} {:>11} {:>8.2}",
            a.profile,
            a.offered,
            a.served,
            a.goodput(),
            a.shed,
            a.cause_load,
            a.recoveries,
            a.rung_final,
            a.metastable,
            a.wall_secs,
        );
        arms.push(a);
    }

    let json = to_json(&arms, seed, horizon, quick);
    std::fs::write(&out, json.to_string_pretty() + "\n").expect("write bench artifact");
    println!("wrote {out}");

    if quick {
        return;
    }
    let fails = gate_failures(&arms);
    for f in &fails {
        eprintln!("gate: {f}");
    }
    if !fails.is_empty() {
        std::process::exit(1);
    }
}
