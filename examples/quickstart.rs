//! Quickstart: write a service against the explicit-choice model.
//!
//! A tiny work-dispatch service: node 0 hands work items to workers. *Which
//! worker* is the kind of decision the paper says should not be hard-coded:
//! we expose it as the choice `"dispatch.worker"`, give the runtime the
//! measured latency of each worker as a feature, and let a learned resolver
//! figure out that the slow worker should be avoided — no dispatch policy
//! appears anywhere in the service code.
//!
//! Run with: `cargo run --release --example quickstart`

use cb_core::prelude::*;
use std::collections::HashMap;

/// Work-dispatch messages.
#[derive(Clone, Debug)]
enum Msg {
    /// A unit of work.
    Work(u32),
    /// Completion report.
    Done(u32),
}

/// The dispatcher (node 0) and the workers (everyone else).
struct Dispatch {
    /// Items completed, as reported back to the dispatcher.
    completed: u32,
    /// Items this node processed as a worker.
    processed: u32,
    /// Items still to hand out (dispatcher only).
    backlog: u32,
    /// Outstanding items: item -> (worker key, dispatch time).
    pending: HashMap<u32, (u64, SimTime)>,
}

const DISPATCH_TIMER: u64 = 1;

impl Service for Dispatch {
    type Msg = Msg;
    type Checkpoint = u32;

    fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, Msg, u32>) {
        if ctx.id() == NodeId(0) {
            ctx.set_timer(SimDuration::from_millis(50), DISPATCH_TIMER);
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_, '_, Msg, u32>, tag: u64) {
        if tag != DISPATCH_TIMER || self.backlog == 0 {
            return;
        }
        self.backlog -= 1;
        let item = self.backlog;
        // The exposed choice: which worker gets this item? Features carry
        // the runtime's own latency estimate per worker.
        let now = ctx.now();
        let options: Vec<OptionDesc> = (1..ctx.host_count() as u32)
            .map(|w| {
                let latency_ms = ctx
                    .net_model()
                    .predicted_latency(NodeId(w), now)
                    .map_or(25.0, |(l, _)| l.as_millis_f64());
                OptionDesc::with_features(w as u64, vec![latency_ms])
            })
            .collect();
        let pick = ctx.choose("dispatch.worker", ContextKey::default(), &options);
        let worker = NodeId(options[pick].key as u32);
        self.pending.insert(item, (options[pick].key, ctx.now()));
        ctx.send(worker, Msg::Work(item));
        if self.backlog > 0 {
            ctx.set_timer(SimDuration::from_millis(50), DISPATCH_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut ServiceCtx<'_, '_, Msg, u32>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Work(item) => {
                self.processed += 1;
                ctx.send(from, Msg::Done(item));
            }
            Msg::Done(item) => {
                self.completed += 1;
                // Close the learning loop: fast turnaround = high reward.
                if let Some((worker, sent)) = self.pending.remove(&item) {
                    let elapsed = ctx.now().saturating_since(sent).as_secs_f64();
                    let reward = 0.05 / (0.05 + elapsed);
                    ctx.feedback("dispatch.worker", ContextKey::default(), worker, reward);
                }
            }
        }
    }

    fn checkpoint(&self, _model: &StateModel<u32>) -> u32 {
        self.completed
    }

    fn neighbors(&self) -> Vec<NodeId> {
        Vec::new()
    }
}

fn main() {
    // A star network where worker 3 sits behind a 150 ms spoke while the
    // others enjoy 5 ms.
    let mut topo = Topology::star(4, SimDuration::from_millis(5), 10_000_000);
    topo.add_path_latency(NodeId(0), NodeId(3), SimDuration::from_millis(150));

    let mut sim = Sim::new(topo, 7, |_| {
        RuntimeNode::new(
            Dispatch {
                completed: 0,
                processed: 0,
                backlog: 60,
                pending: HashMap::new(),
            },
            RuntimeConfig::new(Box::new(LearnedResolver::new(
                BanditPolicy::Ucb1 { c: 0.5 },
                11,
            ))),
        )
    });
    sim.start_all();
    sim.run_until_quiescent(SimTime::from_secs(60));

    let dispatcher = sim.actor(NodeId(0));
    println!(
        "dispatched 60 items; {} completions observed",
        dispatcher.service().completed
    );
    println!("\nper-worker load (learned dispatch should starve the slow worker 3):");
    for w in 1..4u32 {
        let processed = sim.actor(NodeId(w)).service().processed;
        let lat = dispatcher
            .net_model()
            .predicted_latency(NodeId(w), sim.now())
            .map_or_else(|| "unmeasured".into(), |(l, _)| format!("{l}"));
        println!("  worker {w}: {processed:2} items   measured one-way latency: {lat}");
    }
    println!("\nfirst five decisions from the runtime's log:");
    for d in dispatcher.decisions().iter().take(5) {
        println!("  {d}");
    }
    let slow = sim.actor(NodeId(3)).service().processed;
    let fast: u32 = (1..3)
        .map(|w| sim.actor(NodeId(w)).service().processed)
        .sum();
    assert!(
        slow * 3 < fast,
        "learned resolver failed to avoid the slow worker ({slow} vs {fast})"
    );
    println!("\nok: the runtime learned to avoid the slow worker without any dispatch policy in the service");
}
