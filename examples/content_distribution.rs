//! Content distribution: block-selection strategies and tracker bias.
//!
//! Reproduces the two §3.1 content-distribution claims in one run:
//! 1. Neither random nor rarest-random block selection dominates — the seed
//!    capacity decides the winner, so the choice belongs to the runtime.
//! 2. The tracker's peer choice, being exposed, is trivially biased toward
//!    locality, cutting ISP transit traffic (P4P).
//!
//! Run with: `cargo run --release --example content_distribution`

use cb_dissem::{run_swarm, BlockStrategy, SwarmConfig, TrackerPolicy};
use cb_simnet::time::SimDuration;

fn main() {
    println!("Part 1 — block-selection strategies (16 peers x 48 blocks)\n");
    println!(
        "{:<28} {:>10} {:>15} {:>18}",
        "setting", "Random", "Rarest-Random", "Runtime-Resolved"
    );
    println!("{}", "-".repeat(74));
    for (label, seed_bps) in [
        ("constrained seed (2 Mbps)", 2_000_000u64),
        ("ample seed (20 Mbps)", 20_000_000),
    ] {
        let mut cells = Vec::new();
        for strategy in [
            BlockStrategy::Random,
            BlockStrategy::RarestRandom,
            BlockStrategy::Resolved,
        ] {
            let mut total = 0.0;
            for seed in 1..=2u64 {
                let cfg = SwarmConfig {
                    peers: 16,
                    blocks: 48,
                    seed_uplink_bps: seed_bps,
                    horizon: SimDuration::from_secs(1800),
                    seed,
                    ..Default::default()
                };
                let out = run_swarm(&cfg, strategy);
                assert_eq!(out.completed, 15, "{} did not finish", strategy.label());
                total += out.max_time_secs;
            }
            cells.push(total / 2.0);
        }
        println!(
            "{:<28} {:>9.1}s {:>14.1}s {:>17.1}s",
            label, cells[0], cells[1], cells[2]
        );
    }

    println!("\nPart 2 — tracker peer-choice bias (24 peers in 4 ISP domains)\n");
    println!(
        "{:<26} {:>12} {:>16}",
        "tracker", "transit MB", "last finisher"
    );
    println!("{}", "-".repeat(56));
    for policy in [
        TrackerPolicy::Random,
        TrackerPolicy::LocalityBiased {
            local_fraction: 0.8,
        },
    ] {
        let cfg = SwarmConfig {
            peers: 24,
            blocks: 48,
            tracker: policy,
            horizon: SimDuration::from_secs(1800),
            seed: 7,
            ..Default::default()
        };
        let out = run_swarm(&cfg, BlockStrategy::RarestRandom);
        println!(
            "{:<26} {:>10.1}MB {:>15.1}s",
            policy.label(),
            out.transit_bytes as f64 / 1e6,
            out.max_time_secs
        );
    }
    println!(
        "\nthe biased tracker moves traffic inside ISP domains at little cost in\n\
         completion time — the P4P result, available because the choice was exposed"
    );
}
