//! Execution steering: predict an inconsistency, filter it away.
//!
//! A deliberately unsafe toy protocol: every node accepts the first value
//! it hears and forwards it — but two sources race to set *different*
//! values, so without intervention some nodes adopt 1 and others 2 (a
//! classic inconsistency). The CrystalBall-style steering advisor watches
//! the checkpoints of a node's neighborhood; when prediction says an
//! incoming message from a divergent peer would produce a conflicting
//! adoption, it installs an event filter that drops the message and breaks
//! the connection (the paper's universally available corrective action).
//!
//! Run with: `cargo run --release --example steering`

use cb_core::model::state::NodeView;
use cb_core::prelude::*;

/// The toy protocol: adopt the first value heard, forward it onward after
/// a propagation delay (two waves crawl toward each other from opposite
/// ends of the id space, slowly enough that checkpoints and prediction run
/// ahead of them).
#[derive(Clone, Debug)]
struct SetValue(u32);

const FORWARD_TIMER: u64 = 1;
const HOP_DELAY: SimDuration = SimDuration::from_millis(400);

struct Register {
    me: NodeId,
    value: Option<u32>,
    /// Conflicting adoptions this node *observed* (received a different
    /// value after adopting one) — the inconsistency we want to avoid.
    conflicts_seen: u32,
}

impl Register {
    fn adopt(&mut self, ctx: &mut ServiceCtx<'_, '_, SetValue, Option<u32>>, v: u32) {
        self.value = Some(v);
        ctx.set_timer(HOP_DELAY, FORWARD_TIMER);
    }

    /// Forward toward higher ids when carrying value 1 (wave from node 0),
    /// toward lower ids when carrying value 2 (wave from the top).
    fn forward_targets(&self, ctx: &ServiceCtx<'_, '_, SetValue, Option<u32>>) -> Vec<NodeId> {
        let n = ctx.host_count() as u32;
        match self.value {
            Some(1) if self.me.0 + 1 < n => vec![NodeId(self.me.0 + 1)],
            Some(2) if self.me.0 > 0 => vec![NodeId(self.me.0 - 1)],
            _ => Vec::new(),
        }
    }
}

impl Service for Register {
    type Msg = SetValue;
    type Checkpoint = Option<u32>;

    fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, SetValue, Option<u32>>) {
        // Two sources race with different values from opposite ends.
        let n = ctx.host_count() as u32;
        match self.me {
            NodeId(0) => self.adopt(ctx, 1),
            m if m.0 == n - 1 => self.adopt(ctx, 2),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_, '_, SetValue, Option<u32>>, tag: u64) {
        if tag == FORWARD_TIMER {
            if let Some(v) = self.value {
                for t in self.forward_targets(ctx) {
                    ctx.send(t, SetValue(v));
                }
            }
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut ServiceCtx<'_, '_, SetValue, Option<u32>>,
        _from: NodeId,
        msg: SetValue,
    ) {
        match self.value {
            None => self.adopt(ctx, msg.0),
            Some(v) if v != msg.0 => self.conflicts_seen += 1,
            Some(_) => {}
        }
    }

    fn checkpoint(&self, _m: &StateModel<Option<u32>>) -> Option<u32> {
        self.value
    }

    fn neighbors(&self) -> Vec<NodeId> {
        // Everyone checkpoints to everyone in this tiny deployment.
        (0..8).map(NodeId).filter(|&n| n != self.me).collect()
    }
}

fn run(with_steering: bool) -> (u32, u64) {
    let topo = Topology::star(8, SimDuration::from_millis(20), 10_000_000);
    let mut sim = Sim::new(topo, 3, move |_id| {
        let mut config: RuntimeConfig<Option<u32>> =
            RuntimeConfig::new(Box::new(RandomResolver::new(1)))
                .controller_every(SimDuration::from_millis(50));
        if with_steering {
            // The advisor: if my checkpointed value differs from a
            // neighbor's, predict that its next message would cause a
            // conflicting adoption here and filter it.
            let advisor: SteeringAdvisor<Option<u32>> = Box::new(|input| {
                let Some(mine) = input.my_state else {
                    return Vec::new();
                };
                input
                    .model
                    .known()
                    .filter_map(|peer| match input.model.view(peer) {
                        NodeView::Known(s) => match s.state {
                            Some(theirs) if theirs != mine => Some(SteeringAdvice {
                                reason: format!("predicted conflict: {mine} vs {theirs}"),
                                from: peer,
                                action: FilterAction::DropAndBreak,
                            }),
                            _ => None,
                        },
                        NodeView::Generic => None,
                    })
                    .collect()
            });
            config = config.with_advisor(advisor);
        }
        RuntimeNode::new(
            Register {
                me: _id,
                value: None,
                conflicts_seen: 0,
            },
            config,
        )
    });
    sim.start_all();
    sim.run_until_quiescent(SimTime::from_secs(30));
    let conflicts: u32 = sim
        .topology()
        .hosts()
        .map(|n| sim.actor(n).service().conflicts_seen)
        .sum();
    let steered: u64 = sim
        .topology()
        .hosts()
        .map(|n| sim.actor(n).steering_stats().0)
        .sum();
    (conflicts, steered)
}

fn main() {
    let (conflicts_plain, _) = run(false);
    let (conflicts_steered, filtered) = run(true);
    println!("without steering: {conflicts_plain} conflicting deliveries observed");
    println!(
        "with steering:    {conflicts_steered} conflicting deliveries ({filtered} messages filtered)"
    );
    assert!(
        conflicts_steered < conflicts_plain,
        "steering failed to reduce conflicts ({conflicts_steered} vs {conflicts_plain})"
    );
    println!("\nok: predicted-violation filters cut the inconsistency down");
}
