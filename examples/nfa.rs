//! Multiple applicable handlers: the NFA presentation of choices (§3.1).
//!
//! An edge cache answers `Get` requests. Two handlers apply to every cached
//! key: `serve-cached` (instant, possibly stale) and `fetch-origin` (a WAN
//! round trip, always fresh). Instead of hard-coding a TTL policy, both
//! handlers are registered in a [`HandlerSet`] and the runtime resolves the
//! non-determinism; with a learned resolver and staleness feedback, the
//! deployment discovers its own freshness/latency trade-off.
//!
//! Run with: `cargo run --release --example nfa`

use cb_core::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Msg {
    /// Client asks the edge for a key.
    Get { key: u32, client: NodeId },
    /// Edge asks the origin.
    Fetch { key: u32, client: NodeId },
    /// Origin answers the edge.
    Fresh {
        key: u32,
        version: u32,
        client: NodeId,
    },
    /// The edge answers the client with some version of the key.
    Answer { version: u32 },
}

/// The edge cache's mutable state, dispatched over by the handler set.
struct EdgeState {
    /// key -> cached version.
    cache: HashMap<u32, u32>,
    served_cached: u32,
    fetched: u32,
}

struct Edge {
    state: EdgeState,
    handlers: HandlerSet<EdgeState, Msg, u8>,
}

struct Origin {
    /// key -> current version, bumped periodically (data changes!).
    versions: HashMap<u32, u32>,
}

struct Client {
    /// (answers, stale answers) observed.
    answers: u32,
    stale: u32,
    /// Versions the client knows to be current (it watches the origin's
    /// bump schedule in this toy).
    sent: u32,
}

enum Node {
    Edge(Edge),
    Origin(Origin),
    Client(Client),
}

const ORIGIN: NodeId = NodeId(0);
const EDGE: NodeId = NodeId(1);
const TICK: u64 = 1;

fn edge_handlers() -> HandlerSet<EdgeState, Msg, u8> {
    HandlerSet::new("nfa.edge-get")
        .handler(
            "serve-cached",
            |s: &EdgeState, _, m| matches!(m, Msg::Get { key, .. } if s.cache.contains_key(key)),
            |s, ctx, _from, m| {
                if let Msg::Get { key, client } = m {
                    s.served_cached += 1;
                    let version = s.cache[&key];
                    ctx.send(client, Msg::Answer { version });
                }
            },
        )
        .handler(
            "fetch-origin",
            |_, _, m| matches!(m, Msg::Get { .. }),
            |s, ctx, _from, m| {
                if let Msg::Get { key, client } = m {
                    s.fetched += 1;
                    ctx.send(ORIGIN, Msg::Fetch { key, client });
                }
            },
        )
}

impl Service for Node {
    type Msg = Msg;
    type Checkpoint = u8;

    fn on_start(&mut self, ctx: &mut ServiceCtx<'_, '_, Msg, u8>) {
        match self {
            Node::Client(_) => {
                ctx.set_timer(SimDuration::from_millis(80), TICK);
            }
            Node::Origin(_) => {
                ctx.set_timer(SimDuration::from_secs(2), TICK);
            }
            Node::Edge(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceCtx<'_, '_, Msg, u8>, tag: u64) {
        if tag != TICK {
            return;
        }
        match self {
            Node::Client(c) if c.sent < 400 => {
                c.sent += 1;
                let me = ctx.id();
                let key = ctx.rng().gen_below(4) as u32;
                ctx.send(EDGE, Msg::Get { key, client: me });
                ctx.set_timer(SimDuration::from_millis(80), TICK);
            }
            Node::Origin(o) => {
                // Data churns: all versions bump every 2 s.
                for v in o.versions.values_mut() {
                    *v += 1;
                }
                ctx.set_timer(SimDuration::from_secs(2), TICK);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut ServiceCtx<'_, '_, Msg, u8>, from: NodeId, msg: Msg) {
        match self {
            Node::Edge(e) => match msg {
                Msg::Fresh {
                    key,
                    version,
                    client,
                } => {
                    e.state.cache.insert(key, version);
                    ctx.send(client, Msg::Answer { version });
                }
                m @ Msg::Get { .. } => {
                    e.handlers.dispatch(&mut e.state, ctx, from, m);
                }
                _ => {}
            },
            Node::Origin(o) => {
                if let Msg::Fetch { key, client } = msg {
                    let version = *o.versions.entry(key).or_insert(1);
                    ctx.send(
                        from,
                        Msg::Fresh {
                            key,
                            version,
                            client,
                        },
                    );
                }
            }
            Node::Client(c) => {
                if let Msg::Answer { version } = msg {
                    c.answers += 1;
                    // Freshness check (think content hashes): at most one
                    // version behind the origin's bump schedule counts as
                    // fresh.
                    let expected = 1 + (ctx.now().as_millis() / 2000) as u32;
                    if version + 1 < expected {
                        c.stale += 1;
                    }
                }
            }
        }
    }

    fn checkpoint(&self, _m: &StateModel<u8>) -> u8 {
        0
    }

    fn neighbors(&self) -> Vec<NodeId> {
        Vec::new()
    }
}

fn run(make_resolver: impl Fn() -> Box<dyn Resolver> + 'static, label: &str) {
    // Edge near the clients (5 ms); origin behind a 90 ms WAN hop.
    let mut topo = Topology::star(4, SimDuration::from_millis(5), 20_000_000);
    topo.add_path_latency(ORIGIN, EDGE, SimDuration::from_millis(90));
    let mut sim = Sim::new(topo, 5, move |id| {
        let svc = match id {
            ORIGIN => Node::Origin(Origin {
                versions: HashMap::new(),
            }),
            EDGE => Node::Edge(Edge {
                state: EdgeState {
                    cache: HashMap::new(),
                    served_cached: 0,
                    fetched: 0,
                },
                handlers: edge_handlers(),
            }),
            _ => Node::Client(Client {
                answers: 0,
                stale: 0,
                sent: 0,
            }),
        };
        let r: Box<dyn Resolver> = if id == EDGE {
            make_resolver()
        } else {
            Box::new(RandomResolver::new(1))
        };
        RuntimeNode::new(svc, RuntimeConfig::new(r))
    });
    sim.start_all();
    sim.run_until_quiescent(SimTime::from_secs(120));

    let edge = sim.actor(EDGE);
    let Node::Edge(e) = edge.service() else {
        unreachable!()
    };
    let (answers, stale): (u32, u32) = sim
        .topology()
        .hosts()
        .filter_map(|n| match sim.actor(n).service() {
            Node::Client(c) => Some((c.answers, c.stale)),
            _ => None,
        })
        .fold((0, 0), |(a, s), (a2, s2)| (a + a2, s + s2));
    println!(
        "{label:<22} served-cached: {:>4}  fetched: {:>4}  answers: {answers}  stale: {stale} ({:.0}%)",
        e.state.served_cached,
        e.state.fetched,
        100.0 * stale as f64 / answers.max(1) as f64,
    );
}

fn main() {
    println!("edge cache with two applicable handlers for every cached Get:\n");
    run(|| Box::new(RandomResolver::new(7)), "coin-flip resolver");
    run(
        || {
            Box::new(HeuristicResolver::new("always-cache", |o: &OptionDesc| {
                -(o.key as f64)
            }))
        },
        "always serve cached",
    );
    run(
        || {
            Box::new(HeuristicResolver::new("always-fetch", |o: &OptionDesc| {
                o.key as f64
            }))
        },
        "always fetch origin",
    );
    println!(
        "\nthe same service code produces three different systems; which handler\n\
         wins is a deployment decision the runtime owns, not the service"
    );
}
