//! Consensus: the proposer choice across deployment settings.
//!
//! Reproduces the §3.1 consensus claim: a fixed-leader Paxos deployment
//! degrades when the leader saturates, a Mencius-style rotating schedule
//! spreads the load, and exposing the proposer choice to the runtime's
//! learned resolver tracks the best proposer per client under both loads.
//!
//! Run with: `cargo run --release --example consensus`

use cb_paxos::{run_paxos, PaxosConfig, ProposerRegime};
use cb_simnet::time::SimDuration;

fn main() {
    println!("Paxos on a 5-region WAN, 10 clients (commit latency, seconds)\n");
    println!(
        "{:<26} {:>14} {:>14} {:>18}",
        "load", "Fixed leader", "Round-robin", "Runtime-Resolved"
    );
    println!("{}", "-".repeat(76));
    for (label, period_ms) in [
        ("moderate (4/s per client)", 250u64),
        ("high (16/s per client)", 62),
    ] {
        let mut cells = Vec::new();
        for regime in [
            ProposerRegime::FixedLeader,
            ProposerRegime::RoundRobin,
            ProposerRegime::Resolved,
        ] {
            let cfg = PaxosConfig {
                clients: 10,
                commands_per_client: 40,
                submit_period: SimDuration::from_millis(period_ms),
                horizon: SimDuration::from_secs(300),
                seed: 2,
                ..Default::default()
            };
            let out = run_paxos(&cfg, regime);
            assert_eq!(
                out.committed,
                out.submitted,
                "{}: only {}/{} committed",
                regime.label(),
                out.committed,
                out.submitted
            );
            cells.push((out.mean_latency_secs, out.per_replica_commits.clone()));
        }
        println!(
            "{:<26} {:>13.2}s {:>13.2}s {:>17.2}s",
            label, cells[0].0, cells[1].0, cells[2].0
        );
        if period_ms < 100 {
            println!("\n  per-replica proposer load at high rate:");
            for (regime, (_, commits)) in ["Fixed leader", "Round-robin", "Runtime-Resolved"]
                .iter()
                .zip(&cells)
            {
                println!("    {regime:<18} {commits:?}");
            }
        }
    }
    println!(
        "\nthe fixed leader melts when its uplink saturates; the exposed choice\n\
         stays near each client and avoids the melted leader (a fixed rotation\n\
         remains competitive at extreme uniform load, as Mencius observed)"
    );
}
