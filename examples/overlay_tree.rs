//! The paper's case study end to end: RandTree with exposed choices.
//!
//! Reruns §4 at full scale: 31 nodes join a random overlay tree over an
//! Internet-like network, then an entire subtree (about half the nodes)
//! fails and rejoins. Three arms: the hard-coded baseline, the exposed
//! choice resolved at random, and the exposed choice resolved by
//! consequence prediction over the runtime's state model.
//!
//! Run with: `cargo run --release --example overlay_tree`

use cb_randtree::{optimal_depth, run_failure_rejoin, run_join, ScenarioConfig, Setup};

fn main() {
    let nodes = 31;
    println!(
        "RandTree case study: {nodes} nodes, binary capacity (optimal depth {} levels)\n",
        optimal_depth(nodes, 2)
    );
    println!(
        "{:<22} {:>12} {:>18}",
        "setup", "join depth", "rejoin depth"
    );
    println!("{}", "-".repeat(54));
    for setup in Setup::ALL {
        let mut join_depths = Vec::new();
        let mut rejoin_depths = Vec::new();
        for seed in 1..=3u64 {
            let cfg = ScenarioConfig {
                nodes,
                seed,
                ..Default::default()
            };
            let join = run_join(&cfg, setup);
            assert!(join.after_join.well_formed, "join tree malformed");
            join_depths.push(join.after_join.max_depth);
            let fail = run_failure_rejoin(&cfg, setup);
            let stats = fail.after_rejoin.expect("rejoin stats");
            assert!(stats.well_formed, "rejoin tree malformed");
            rejoin_depths.push(stats.max_depth);
        }
        let mean = |v: &[u32]| v.iter().sum::<u32>() as f64 / v.len() as f64;
        println!(
            "{:<22} {:>12.2} {:>18.2}",
            setup.label(),
            mean(&join_depths),
            mean(&rejoin_depths),
        );
    }
    println!(
        "\npaper reported: join depth 6 for all setups; rejoin 10 / 10 / 9 —\n\
         the ordering (prediction ≤ random/baseline after failures) is the result."
    );
}
